"""ktop: a guest-side kernel-observability monitor (top/ftrace hybrid).

Exercises the whole /proc surface from *inside* the sandbox, the way a
real monitoring agent would:

1. programs the tracer through ``/proc/trace_ctl`` (mask to the syscall
   tracepoints, then enable),
2. snapshots ``/proc/sched_debug`` and ``/proc/uring`` and sanity-checks
   their headers,
3. tails ``/proc/trace_pipe`` through epoll — the fd is registered with
   ``EPOLLIN`` and read nonblockingly on each readiness edge; every
   read must return whole 40-byte records (the kernel never splits
   one),
4. disables tracing again and reports what it saw.

The app is self-feeding by construction: with the syscall tracepoints
enabled, the ``epoll_pwait``/``read`` crossings of the tail loop
themselves generate records, so progress never depends on outside
activity.  ``argv: ktop [min_records]`` (default 8).  Output is
deterministic::

    ktop ok sched=1 uring=1 records=N aligned=1

with ``N >= min_records`` (exact event counts are asserted host-side,
where the workload is controlled).
"""

from .libc import with_libc

KTOP_SOURCE = with_libc(r"""
const TRACE_REC = 40;       // sizeof a trace_pipe record

global want: i32 = 8;       // stop after this many records
global records: i32 = 0;
global aligned: i32 = 1;    // every read returned whole records
global sched_ok: i32 = 0;
global uring_ok: i32 = 0;

buffer cmd[64];
buffer pbuf[2048];
buffer tbuf[400];           // 10 records per read
buffer evbuf[12];           // 1 epoll_event

// write one command string to /proc/trace_ctl
func trace_ctl(s: i32) {
    var fd: i32 = open("/proc/trace_ctl", O_WRONLY, 0);
    if (fd < 0) { eprint("ktop: no trace_ctl\n"); exit(1); }
    write_all(fd, s, strlen(s));
    close(fd);
}

// snapshot a /proc file into pbuf; returns bytes read (NUL-terminated)
func slurp(path: i32) -> i32 {
    var fd: i32 = open(path, O_RDONLY, 0);
    if (fd < 0) { return 0 - 1; }
    var total: i32 = 0;
    while (total < 2047) {
        var r: i32 = read(fd, pbuf + total, 2047 - total);
        if (r <= 0) { break; }
        total = total + r;
    }
    close(fd);
    store8(pbuf + total, 0);
    return total;
}

func tail_pipe() {
    var tfd: i32 = open("/proc/trace_pipe", O_RDONLY | O_NONBLOCK, 0);
    if (tfd < 0) { eprint("ktop: no trace_pipe\n"); exit(1); }
    var ep: i32 = cret(SYS_epoll_create1(0));
    epoll_add(ep, tfd, EPOLLIN);
    while (records < want) {
        var n: i32 = epoll_wait(ep, evbuf, 1, 5000);
        if (n <= 0) { break; }   // stall guard
        var r: i32 = read(tfd, tbuf, 400);
        if (r > 0) {
            if (r % TRACE_REC != 0) { aligned = 0; }
            records = records + r / TRACE_REC;
        }
    }
    close(ep);
    close(tfd);
}

export func _start() {
    __init_args();
    if (argc() > 1) { want = atoi(argv(1)); }
    if (want < 1) { want = 1; }

    // program the tracer: syscall points only (deterministic + self-
    // feeding: our own epoll/read crossings keep the pipe non-empty)
    trace_ctl("mask=syscall_enter,syscall_exit\non\n");

    if (slurp("/proc/sched_debug") > 0) {
        if (strncmp(pbuf, "sched:", 6) == 0) { sched_ok = 1; }
    }
    if (slurp("/proc/uring") > 0) {
        if (strncmp(pbuf, "crossings:", 10) == 0) { uring_ok = 1; }
    }

    tail_pipe();
    trace_ctl("off\n");

    print("ktop ok sched=");
    print_int(sched_ok);
    print(" uring=");
    print_int(uring_ok);
    print(" records=");
    print_int(records);
    print(" aligned=");
    print_int(aligned);
    println("");
    exit(0);
}
""")
