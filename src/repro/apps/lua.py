"""mini-lua: the repository's ``lua`` analog — a scripting interpreter.

Interprets a small line-oriented language with 26 integer registers (a-z),
arithmetic, bounded loops, while loops and printing.  The workload profile
matches the paper's Fig. 7 ``lua`` row: almost all time is interpreter
(app) work, with only light I/O at the edges.

Language::

    set a 100        # a = 100
    mov b a          # b = a
    add c a b        # c = a + b   (also sub/mul/div/mod)
    addi a 5         # a = a + 5   (also subi/muli)
    print a
    loop 10          # repeat the block 10 times (nestable)
      ...
    end
    while a          # repeat while a != 0
      ...
    end
"""

from .libc import with_libc

LUA_SOURCE = with_libc(r"""
const MAX_LINES = 4096;
const MAX_PROG = 65536;

buffer regs[104];          // 26 x i32
buffer prog[65536];        // script text
buffer line_starts[16384]; // i32 offsets per line
buffer loop_stack[256];    // (line, remaining) pairs; while uses remaining=-1
buffer numbuf[32];

global nlines: i32 = 0;
global loop_top: i32 = 0;

func reg_of(p: i32) -> i32 {
    return load8u(p) - 'a';
}

func get_reg(i: i32) -> i32 { return load32(regs + i * 4); }
func set_reg(i: i32, v: i32) { store32(regs + i * 4, v); }

// skip spaces, return pointer to next token start
func skip_ws(p: i32) -> i32 {
    while (load8u(p) == ' ') { p = p + 1; }
    return p;
}

func next_tok(p: i32) -> i32 {
    while (load8u(p) != ' ' && load8u(p) != 0) { p = p + 1; }
    return skip_ws(p);
}

// parse integer or register reference at p
func operand(p: i32) -> i32 {
    var c: i32 = load8u(p);
    if (c >= 'a' && c <= 'z' && (load8u(p + 1) == ' ' || load8u(p + 1) == 0)) {
        return get_reg(c - 'a');
    }
    return atoi(p);
}

func index_lines() {
    nlines = 0;
    var off: i32 = 0;
    store32(line_starts, 0);
    var i: i32 = 0;
    while (load8u(prog + i) != 0) {
        if (load8u(prog + i) == 10) {
            store8(prog + i, 0);
            store32(line_starts + (nlines + 1) * 4, i + 1);
            nlines = nlines + 1;
        }
        i = i + 1;
    }
    nlines = nlines + 1;
}

func line_at(idx: i32) -> i32 {
    return prog + load32(line_starts + idx * 4);
}

// find the matching 'end' for the block opened at line idx
func find_end(idx: i32) -> i32 {
    var depth: i32 = 1;
    var i: i32 = idx + 1;
    while (i < nlines) {
        var p: i32 = skip_ws(line_at(i));
        if (strncmp(p, "loop", 4) == 0 || strncmp(p, "while", 5) == 0) {
            depth = depth + 1;
        }
        if (strncmp(p, "end", 3) == 0) {
            depth = depth - 1;
            if (depth == 0) { return i; }
        }
        i = i + 1;
    }
    return nlines;
}

func run() -> i32 {
    var pc: i32 = 0;
    var steps: i32 = 0;
    while (pc < nlines) {
        var p: i32 = skip_ws(line_at(pc));
        var c0: i32 = load8u(p);
        steps = steps + 1;
        if (c0 == 0 || c0 == '#') { pc = pc + 1; continue; }

        if (strncmp(p, "set ", 4) == 0) {
            var t1: i32 = next_tok(p);
            set_reg(reg_of(t1), operand(next_tok(t1)));
            pc = pc + 1; continue;
        }
        if (strncmp(p, "mov ", 4) == 0) {
            var t1: i32 = next_tok(p);
            set_reg(reg_of(t1), operand(next_tok(t1)));
            pc = pc + 1; continue;
        }
        if (strncmp(p, "add ", 4) == 0 || strncmp(p, "sub ", 4) == 0 ||
            strncmp(p, "mul ", 4) == 0 || strncmp(p, "div ", 4) == 0 ||
            strncmp(p, "mod ", 4) == 0) {
            var t1: i32 = next_tok(p);
            var t2: i32 = next_tok(t1);
            var t3: i32 = next_tok(t2);
            var x: i32 = operand(t2);
            var y: i32 = operand(t3);
            var r: i32 = 0;
            if (c0 == 'a') { r = x + y; }
            if (c0 == 's') { r = x - y; }
            if (c0 == 'm' && load8u(p + 1) == 'u') { r = x * y; }
            if (c0 == 'd') { if (y != 0) { r = x / y; } }
            if (c0 == 'm' && load8u(p + 1) == 'o') { if (y != 0) { r = x % y; } }
            set_reg(reg_of(t1), r);
            pc = pc + 1; continue;
        }
        if (strncmp(p, "addi ", 5) == 0 || strncmp(p, "subi ", 5) == 0 ||
            strncmp(p, "muli ", 5) == 0) {
            var t1: i32 = next_tok(p);
            var t2: i32 = next_tok(t1);
            var ri: i32 = reg_of(t1);
            var imm: i32 = atoi(t2);
            if (c0 == 'a') { set_reg(ri, get_reg(ri) + imm); }
            if (c0 == 's') { set_reg(ri, get_reg(ri) - imm); }
            if (c0 == 'm') { set_reg(ri, get_reg(ri) * imm); }
            pc = pc + 1; continue;
        }
        if (strncmp(p, "print", 5) == 0) {
            var t1: i32 = next_tok(p);
            itoa(operand(t1), numbuf);
            println(numbuf);
            pc = pc + 1; continue;
        }
        if (strncmp(p, "loop ", 5) == 0) {
            var count: i32 = operand(next_tok(p));
            if (count <= 0) { pc = find_end(pc) + 1; continue; }
            store32(loop_stack + loop_top * 8, pc);
            store32(loop_stack + loop_top * 8 + 4, count);
            loop_top = loop_top + 1;
            pc = pc + 1; continue;
        }
        if (strncmp(p, "while", 5) == 0) {
            var cond: i32 = operand(next_tok(p));
            if (cond == 0) { pc = find_end(pc) + 1; continue; }
            store32(loop_stack + loop_top * 8, pc);
            store32(loop_stack + loop_top * 8 + 4, -1);
            loop_top = loop_top + 1;
            pc = pc + 1; continue;
        }
        if (strncmp(p, "end", 3) == 0) {
            if (loop_top == 0) { pc = pc + 1; continue; }
            var head: i32 = load32(loop_stack + (loop_top - 1) * 8);
            var remaining: i32 = load32(loop_stack + (loop_top - 1) * 8 + 4);
            if (remaining == -1) {
                // while: re-evaluate the condition at the head line
                var hp: i32 = skip_ws(line_at(head));
                if (operand(next_tok(hp)) != 0) { pc = head + 1; continue; }
                loop_top = loop_top - 1;
                pc = pc + 1; continue;
            }
            remaining = remaining - 1;
            if (remaining > 0) {
                store32(loop_stack + (loop_top - 1) * 8 + 4, remaining);
                pc = head + 1; continue;
            }
            loop_top = loop_top - 1;
            pc = pc + 1; continue;
        }
        eprint("mini-lua: bad instruction: ");
        eprint(p);
        eprint("\n");
        return 1;
    }
    return 0;
}

export func _start() {
    __init_args();
    var fd: i32 = STDIN;
    if (argc() > 1) {
        fd = open(argv(1), O_RDONLY, 0);
        if (fd < 0) { eprint("mini-lua: cannot open script\n"); exit(2); }
    }
    var total: i32 = 0;
    while (total < MAX_PROG - 1) {
        var n: i32 = read(fd, prog + total, MAX_PROG - 1 - total);
        if (n <= 0) { break; }
        total = total + n;
    }
    store8(prog + total, 0);
    index_lines();
    exit(run());
}
""")


def fib_script(n: int) -> bytes:
    """A mini-lua script computing Fibonacci iteratively n times."""
    return (
        f"set a 0\nset b 1\nset i {n}\n"
        "while i\n"
        "  add c a b\n  mov a b\n  mov b c\n  subi i 1\n"
        "end\n"
        "print a\n"
    ).encode()


def arith_benchmark_script(iterations: int) -> bytes:
    """CPU-bound interpreter workload (Fig. 7 / Fig. 8 lua benchmark)."""
    return (
        f"set i {iterations}\nset s 0\n"
        "while i\n"
        "  mov t i\n  mul t t 3\n  mod t t 7919\n  add s s t\n  subi i 1\n"
        "end\n"
        "print s\n"
    ).encode()
