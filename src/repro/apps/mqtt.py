"""paho-bench analog: an MQTT-style pub/sub broker and benchmark client.

Frames are length-prefixed binary (type, topic, payload with an FNV-1a
checksum trailer); the client publishes N messages to a topic it also
subscribes to and verifies every echoed checksum.  The heavy lifting —
frame encode/decode and checksum arithmetic — happens in guest code, which
is why the paper's Fig. 7 shows paho-bench at ~97% app time.

The broker has **two serving modes** (the same split as
``apps/memcached.py``):

* threaded (default): one worker LWP per client via WALI ``clone``,
* event loop (``-e``): one thread, nonblocking fds, ``accept4`` +
  ``epoll_pwait`` dispatch with per-connection frame reassembly — both
  modes route complete frames through the shared ``handle_frame``
  recipe, so the protocol logic is written once.

Frame wire format::

    u8 type (1=CONNECT 2=SUB 3=PUB 4=MSG 5=DISCONNECT)
    u8 topic_len, topic bytes
    u16 payload_len (LE), payload bytes
"""

from .libc import with_libc

MQTT_BROKER_SOURCE = with_libc(r"""
const MAX_CLIENTS = 16;
// per-client: {i32 fd, i32 topic_ptr}
buffer subs[128];
buffer lock[4];
global running: i32 = 1;

buffer framebufs[32768];   // 16 workers x 2048
buffer slot_lock[4];
global next_slot: i32 = 0;

func read_exact(fd: i32, buf: i32, n: i32) -> i32 {
    var got: i32 = 0;
    while (got < n) {
        var r: i32 = read(fd, buf + got, n - got);
        if (r <= 0) { return -1; }
        got = got + r;
    }
    return n;
}

// returns frame length written into buf: [type, tlen, topic, plen16, payload]
func read_frame(fd: i32, buf: i32) -> i32 {
    if (read_exact(fd, buf, 2) < 0) { return -1; }
    var tlen: i32 = load8u(buf + 1);
    if (read_exact(fd, buf + 2, tlen) < 0) { return -1; }
    if (read_exact(fd, buf + 2 + tlen, 2) < 0) { return -1; }
    var plen: i32 = load16u(buf + 2 + tlen);
    if (plen > 1500) { return -1; }
    if (read_exact(fd, buf + 4 + tlen, plen) < 0) { return -1; }
    return 4 + tlen + plen;
}

func subscribe(fd: i32, topic: i32, tlen: i32) {
    mutex_lock(lock);
    var i: i32 = 0;
    while (i < MAX_CLIENTS) {
        if (load32(subs + i * 8) == 0) {
            var t: i32 = malloc(tlen + 1);
            memcopy(t, topic, tlen);
            store8(t + tlen, 0);
            store32(subs + i * 8, fd);
            store32(subs + i * 8 + 4, t);
            break;
        }
        i = i + 1;
    }
    mutex_unlock(lock);
}

func unsubscribe(fd: i32) {
    mutex_lock(lock);
    var i: i32 = 0;
    while (i < MAX_CLIENTS) {
        if (load32(subs + i * 8) == fd) {
            free(load32(subs + i * 8 + 4));
            store32(subs + i * 8, 0);
            store32(subs + i * 8 + 4, 0);
        }
        i = i + 1;
    }
    mutex_unlock(lock);
}

// deliver n bytes even on a nonblocking fd: EAGAIN yields and retries
// (the subscriber drains from its own LWP), so a backpressured stream
// never loses frame sync; a real error gives up on the connection
func send_frame(fd: i32, buf: i32, n: i32) -> i32 {
    var done: i32 = 0;
    while (done < n) {
        var r: i32 = cret(SYS_write(fd, buf + done, n - done));
        if (r < 0) {
            if (errno == EAGAIN) { SYS_sched_yield(); }
            else { return -1; }
        } else { done = done + r; }
    }
    return done;
}

// deliver a PUB frame (rewritten as MSG) to all matching subscribers
func route(frame: i32, flen: i32) {
    var tlen: i32 = load8u(frame + 1);
    mutex_lock(lock);
    var i: i32 = 0;
    while (i < MAX_CLIENTS) {
        var sfd: i32 = load32(subs + i * 8);
        if (sfd != 0) {
            var stopic: i32 = load32(subs + i * 8 + 4);
            if (strlen(stopic) == tlen &&
                strncmp(stopic, frame + 2, tlen) == 0) {
                store8(frame, 4);   // type = MSG
                send_frame(sfd, frame, flen);
            }
        }
        i = i + 1;
    }
    mutex_unlock(lock);
}

// ---- shared frame dispatch (both serving modes) ----
// handles one complete frame; returns 0 = keep serving, 1 = close this
// connection, 2 = shutdown the broker
func handle_frame(fd: i32, buf: i32, n: i32) -> i32 {
    var type: i32 = load8u(buf);
    if (type == 2) {           // SUBSCRIBE
        subscribe(fd, buf + 2, load8u(buf + 1));
    } else { if (type == 3) {  // PUBLISH
        route(buf, n);
    } else { if (type == 5) {  // DISCONNECT
        return 1;
    } else { if (type == 9) {  // admin shutdown
        return 2;
    }}}}
    return 0;
}

func broker_worker(fd: i32) {
    mutex_lock(slot_lock);
    var slot: i32 = next_slot % 16;
    next_slot = next_slot + 1;
    mutex_unlock(slot_lock);
    var buf: i32 = framebufs + slot * 2048;

    while (1) {
        var n: i32 = read_frame(fd, buf);
        if (n < 0) { break; }
        var action: i32 = handle_frame(fd, buf, n);
        if (action == 1) { break; }
        if (action == 2) {
            running = 0;
            close(fd);
            exit(0);
        }
    }
    unsubscribe(fd);
    close(fd);
}

func threaded_serve(lfd: i32) {
    while (running) {
        var conn: i32 = cret(SYS_accept(lfd, 0, 0));
        if (conn < 0) { break; }
        thread_create(funcref(broker_worker), conn);
    }
}

// ---- event-loop mode: one thread, epoll dispatch, nonblocking fds ----
// (the apps/memcached.py -e recipe, with frame reassembly instead of
// line assembly: partial frames accumulate per connection until the
// length-prefixed payload is complete, then flow into handle_frame)
const EV_MAXFD = 64;
buffer ev_bufs[131072];     // EV_MAXFD x 2048: per-connection frame buffers
buffer ev_lens[256];        // EV_MAXFD x i32: partial-frame fill counts
buffer ev_evbuf[384];       // 32 epoll_events x 12 bytes
buffer ev_rd[256];          // read chunk

func ev_close(ep: i32, fd: i32) {
    epoll_del(ep, fd);
    unsubscribe(fd);
    close(fd);
    store32(ev_lens + fd * 4, 0);
}

// a buffered frame is complete once the header and the u16-prefixed
// payload have both arrived; returns its length, 0 while partial
func frame_ready(base: i32, len: i32) -> i32 {
    if (len < 2) { return 0; }
    var tlen: i32 = load8u(base + 1);
    if (len < 4 + tlen) { return 0; }
    var plen: i32 = load16u(base + 2 + tlen);
    if (plen > 1500) { return 0 - 1; }   // oversized: poison the conn
    if (len < 4 + tlen + plen) { return 0; }
    return 4 + tlen + plen;
}

// drain one readable connection; returns 2 when shutdown was requested
func ev_conn(ep: i32, fd: i32) -> i32 {
    var base: i32 = ev_bufs + fd * 2048;
    var len: i32 = load32(ev_lens + fd * 4);
    while (1) {
        var r: i32 = read(fd, ev_rd, 256);
        if (r < 0) {
            if (errno == EAGAIN) {
                store32(ev_lens + fd * 4, len);
                return 0;
            }
            ev_close(ep, fd);
            return 0;
        }
        if (r == 0) { ev_close(ep, fd); return 0; }
        var i: i32 = 0;
        while (i < r) {
            if (len < 2040) {
                store8(base + len, load8u(ev_rd + i));
                len = len + 1;
            }
            i = i + 1;
        }
        // extract every complete frame accumulated so far
        while (1) {
            var flen: i32 = frame_ready(base, len);
            if (flen == 0) { break; }
            if (flen < 0) { ev_close(ep, fd); return 0; }
            var action: i32 = handle_frame(fd, base, flen);
            memcopy(base, base + flen, len - flen);
            len = len - flen;
            if (action == 1) {
                store32(ev_lens + fd * 4, 0);
                ev_close(ep, fd);
                return 0;
            }
            if (action == 2) { return 2; }
        }
    }
    return 0;
}

func ev_serve(lfd: i32) {
    var ep: i32 = cret(SYS_epoll_create1(0));
    set_nonblock(lfd);
    epoll_add(ep, lfd, EPOLLIN);
    while (running) {
        var n: i32 = epoll_wait(ep, ev_evbuf, 32, 0 - 1);
        var i: i32 = 0;
        while (i < n) {
            var fd: i32 = ev_fd(ev_evbuf, i);
            if (fd == lfd) {
                while (1) {
                    var conn: i32 = cret(SYS_accept4(lfd, 0, 0,
                                                     SOCK_NONBLOCK));
                    if (conn < 0) { break; }
                    if (conn >= EV_MAXFD) { close(conn); }
                    else {
                        store32(ev_lens + conn * 4, 0);
                        epoll_add(ep, conn, EPOLLIN);
                    }
                }
            } else {
                if (ev_conn(ep, fd) == 2) { running = 0; }
            }
            i = i + 1;
        }
    }
}

export func _start() {
    __init_args();
    var port: i32 = 1883;
    var event_mode: i32 = 0;
    if (argc() > 1) { port = atoi(argv(1)); }
    if (argc() > 2) {
        if (strcmp(argv(2), "-e") == 0) { event_mode = 1; }
    }
    var lfd: i32 = tcp_listen(port, 8);
    if (lfd < 0) { eprint("mqtt-broker: cannot listen\n"); exit(1); }
    println("mqtt-broker: ready");
    if (event_mode) { ev_serve(lfd); }
    else { threaded_serve(lfd); }
    exit(0);
}
""")

MQTT_BENCH_SOURCE = with_libc(r"""
buffer frame[2048];
buffer inframe[2048];

func read_exact(fd: i32, buf: i32, n: i32) -> i32 {
    var got: i32 = 0;
    while (got < n) {
        var r: i32 = read(fd, buf + got, n - got);
        if (r <= 0) { return -1; }
        got = got + r;
    }
    return n;
}

func read_frame(fd: i32, buf: i32) -> i32 {
    if (read_exact(fd, buf, 2) < 0) { return -1; }
    var tlen: i32 = load8u(buf + 1);
    if (read_exact(fd, buf + 2, tlen) < 0) { return -1; }
    if (read_exact(fd, buf + 2 + tlen, 2) < 0) { return -1; }
    var plen: i32 = load16u(buf + 2 + tlen);
    if (read_exact(fd, buf + 4 + tlen, plen) < 0) { return -1; }
    return 4 + tlen + plen;
}

// FNV-1a over the payload body (app-space checksum work)
func fnv1a(p: i32, n: i32) -> i32 {
    var h: i32 = 0x811c9dc5;
    var i: i32 = 0;
    while (i < n) {
        h = (h ^ load8u(p + i)) * 0x01000193;
        i = i + 1;
    }
    return h;
}

// build PUB frame for topic with seq-stamped payload; returns length
func build_pub(topic: i32, seq: i32, payload_size: i32) -> i32 {
    var tlen: i32 = strlen(topic);
    store8(frame, 3);
    store8(frame + 1, tlen);
    memcopy(frame + 2, topic, tlen);
    var body: i32 = frame + 4 + tlen;
    var plen: i32 = payload_size + 8;    // body + seq + checksum
    store16(frame + 2 + tlen, plen);
    var i: i32 = 0;
    while (i < payload_size) {
        store8(body + i, (seq * 31 + i * 7) & 255);
        i = i + 1;
    }
    store32(body + payload_size, seq);
    store32(body + payload_size + 4, fnv1a(body, payload_size + 4));
    return 4 + tlen + plen;
}

export func _start() {
    __init_args();
    var port: i32 = 1883;
    var n: i32 = 100;
    var payload_size: i32 = 64;
    var do_shutdown: i32 = 0;
    if (argc() > 1) { port = atoi(argv(1)); }
    if (argc() > 2) { n = atoi(argv(2)); }
    if (argc() > 3) { payload_size = atoi(argv(3)); }
    if (argc() > 4) { do_shutdown = atoi(argv(4)); }

    var fd: i32 = tcp_connect(port);
    if (fd < 0) { eprint("mqtt-bench: cannot connect\n"); exit(1); }

    // subscribe to the echo topic
    store8(frame, 2);
    store8(frame + 1, 9);
    memcopy(frame + 2, "bench/top", 9);
    store16(frame + 11, 0);
    write_all(fd, frame, 13);
    sleep_ms(5);

    var ok: i32 = 0;
    var bad: i32 = 0;
    var seq: i32 = 0;
    while (seq < n) {
        var flen: i32 = build_pub("bench/top", seq, payload_size);
        write_all(fd, frame, flen);
        var rlen: i32 = read_frame(fd, inframe);
        if (rlen < 0) { break; }
        var tlen: i32 = load8u(inframe + 1);
        var body: i32 = inframe + 4 + tlen;
        var plen: i32 = load16u(inframe + 2 + tlen);
        var want: i32 = load32(body + plen - 4);
        if (fnv1a(body, plen - 4) == want) { ok = ok + 1; }
        else { bad = bad + 1; }
        seq = seq + 1;
    }
    if (do_shutdown) {
        store8(frame, 9);
        store8(frame + 1, 0);
        store16(frame + 2, 0);
        write_all(fd, frame, 4);
    } else {
        store8(frame, 5);
        store8(frame + 1, 0);
        store16(frame + 2, 0);
        write_all(fd, frame, 4);
    }
    print("bench ok=");
    print_int(ok);
    print(" bad=");
    print_int(bad);
    println("");
    close(fd);
    exit(0);
}
""")
