"""``repro.apps`` — guest software: libc plus the application suite the
evaluation runs on WALI (shell, interpreter, database, KV server, MQTT)."""

from .libc import LIBC_SOURCE, with_libc
from .registry import (
    APP_SOURCES, PAPER_ANALOG, app_names, build, clear_cache, install_all,
)

__all__ = ["APP_SOURCES", "LIBC_SOURCE", "PAPER_ANALOG", "app_names",
           "build", "clear_cache", "install_all", "with_libc"]
