"""mini-sh: the repository's ``bash`` analog.

A line-oriented shell exercising the syscall families the paper credits to
bash (Table 1 "signals"; Fig. 2 profile): fork/execve/wait4 process control,
pipes with dup2 plumbing, output/input redirection, SIGINT handling via a
registered guest signal handler, cd/pwd/echo/exit builtins, and direct
execution of installed ``.wasm`` binaries (the binfmt trick).

Scripts come from stdin (fed through the kernel console) or from a file via
``mini_sh <script>``.
"""

from .libc import with_libc

SH_SOURCE = with_libc(r"""
buffer line[1024];
buffer cwdbuf[256];
buffer pathbuf[256];
buffer tokens[256];      // up to 32 i32 pointers + NUL terminator
buffer argvbuf[136];     // child argv array (32 entries + NULL)
buffer envpbuf[8];       // empty envp
global interrupted: i32 = 0;
global last_status: i32 = 0;
global script_fd: i32 = 0;

func on_sigint(sig: i32) {
    interrupted = 1;
    print("^C\n");
}

// split the line buffer into NUL-terminated tokens; returns count
func tokenize(buf: i32) -> i32 {
    var n: i32 = 0;
    var p: i32 = buf;
    while (load8u(p) != 0 && n < 32) {
        while (load8u(p) == ' ') { store8(p, 0); p = p + 1; }
        if (load8u(p) == 0) { break; }
        store32(tokens + n * 4, p);
        n = n + 1;
        while (load8u(p) != ' ' && load8u(p) != 0) { p = p + 1; }
    }
    store32(tokens + n * 4, 0);
    return n;
}

func tok(i: i32) -> i32 { return load32(tokens + i * 4); }

// resolve a command name to an executable path
func resolve(cmd: i32) -> i32 {
    if (strchr(cmd, '/') != 0) { return cmd; }
    strcpy(pathbuf, "/bin/");
    strcat(pathbuf, cmd);
    strcat(pathbuf, ".wasm");
    return pathbuf;
}

// run tokens [first, last) with optional redirects; returns exit status
func run_simple(first: i32, last: i32, in_fd: i32, out_fd: i32) -> i32 {
    // scan for redirections
    var nargs: i32 = 0;
    var i: i32 = first;
    var redir_out: i32 = 0;
    var redir_in: i32 = 0;
    var append: i32 = 0;
    while (i < last) {
        var t: i32 = tok(i);
        if (strcmp(t, ">") == 0) { redir_out = tok(i + 1); i = i + 2; continue; }
        if (strcmp(t, ">>") == 0) { redir_out = tok(i + 1); append = 1; i = i + 2; continue; }
        if (strcmp(t, "<") == 0) { redir_in = tok(i + 1); i = i + 2; continue; }
        store32(argvbuf + nargs * 4, t);
        nargs = nargs + 1;
        i = i + 1;
    }
    store32(argvbuf + nargs * 4, 0);
    if (nargs == 0) { return 0; }

    var pid: i32 = fork();
    if (pid == 0) {
        // child: wire stdio then exec
        if (in_fd != STDIN) { SYS_dup2(in_fd, STDIN); close(in_fd); }
        if (out_fd != STDOUT) { SYS_dup2(out_fd, STDOUT); close(out_fd); }
        if (redir_in != 0) {
            var rfd: i32 = open(redir_in, O_RDONLY, 0);
            if (rfd < 0) { eprint("sh: cannot open input\n"); exit(1); }
            SYS_dup2(rfd, STDIN);
            close(rfd);
        }
        if (redir_out != 0) {
            var flags: i32 = O_WRONLY | O_CREAT;
            if (append) { flags = flags | O_APPEND; }
            else { flags = flags | O_TRUNC; }
            var wfd: i32 = open(redir_out, flags, 0x1b4);  // 0644
            if (wfd < 0) { eprint("sh: cannot open output\n"); exit(1); }
            SYS_dup2(wfd, STDOUT);
            close(wfd);
        }
        execve(resolve(load32(argvbuf)), argvbuf, envpbuf);
        eprint("sh: command not found: ");
        eprint(load32(argvbuf));
        eprint("\n");
        exit(127);
    }
    if (in_fd != STDIN) { close(in_fd); }
    if (out_fd != STDOUT) { close(out_fd); }
    var status: i32 = 0;
    waitpid(pid, __io_buf);
    status = load32(__io_buf);
    return (status >> 8) & 255;
}

buffer pipefds[8];

func run_line(ntok: i32) -> i32 {
    if (ntok == 0) { return 0; }
    var cmd: i32 = tok(0);

    // pipes/redirections force the external path (even for echo)
    var has_plumbing: i32 = 0;
    var j: i32 = 0;
    while (j < ntok) {
        var tj: i32 = tok(j);
        if (strcmp(tj, "|") == 0 || strcmp(tj, ">") == 0 ||
            strcmp(tj, ">>") == 0 || strcmp(tj, "<") == 0) {
            has_plumbing = 1;
        }
        j = j + 1;
    }

    // builtins
    if (strcmp(cmd, "exit") == 0) {
        var code: i32 = 0;
        if (ntok > 1) { code = atoi(tok(1)); }
        exit(code);
    }
    if (strcmp(cmd, "cd") == 0) {
        if (ntok > 1) {
            if (cret(SYS_chdir(tok(1))) < 0) {
                eprint("cd: no such directory\n");
                return 1;
            }
        }
        return 0;
    }
    if (strcmp(cmd, "pwd") == 0) {
        cret(SYS_getcwd(cwdbuf, 256));
        println(cwdbuf);
        return 0;
    }
    if (strcmp(cmd, "echo") == 0 && has_plumbing == 0) {
        var i: i32 = 1;
        while (i < ntok) {
            if (i > 1) { print(" "); }
            print(tok(i));
            i = i + 1;
        }
        println("");
        return 0;
    }
    if (strcmp(cmd, "status") == 0) {
        print_int(last_status);
        println("");
        return 0;
    }
    if (strcmp(cmd, "kill") == 0) {
        if (ntok > 2) { cret(SYS_kill(atoi(tok(2)), atoi(tok(1)))); }
        return 0;
    }

    // find a pipe
    var bar: i32 = -1;
    var i: i32 = 0;
    while (i < ntok) {
        if (strcmp(tok(i), "|") == 0) { bar = i; break; }
        i = i + 1;
    }
    if (bar < 0) {
        return run_simple(0, ntok, STDIN, STDOUT);
    }
    // two-stage pipeline: left | right
    cret(SYS_pipe2(pipefds, 0));
    var rfd: i32 = load32(pipefds);
    var wfd: i32 = load32(pipefds + 4);
    var left_pid: i32 = fork();
    if (left_pid == 0) {
        close(rfd);
        SYS_dup2(wfd, STDOUT);
        close(wfd);
        exit(run_simple(0, bar, STDIN, STDOUT));
    }
    close(wfd);
    var st: i32 = run_simple(bar + 1, ntok, rfd, STDOUT);
    waitpid(left_pid, __io_buf);
    return st;
}

export func _start() {
    __init_args();
    signal(SIGINT, funcref(on_sigint));
    script_fd = STDIN;
    if (argc() > 1) {
        script_fd = open(argv(1), O_RDONLY, 0);
        if (script_fd < 0) {
            eprint("sh: cannot open script\n");
            exit(2);
        }
    }
    while (1) {
        var n: i32 = read_line(script_fd, line, 1024);
        if (n < 0) { break; }
        if (load8u(line) == '#') { continue; }
        interrupted = 0;
        last_status = run_line(tokenize(line));
    }
    exit(last_status);
}
""")
