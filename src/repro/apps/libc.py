"""The guest C library: mini-C source compiled against WALI imports.

This is the repository's ``wali-musl`` analog (§4 "Coverage"): everything
above the syscall boundary — malloc over mmap, string routines, buffered-ish
stdio, process spawning, signals, futex-based mutexes and threads — is guest
code inside the sandbox, written only against ``wali.*`` imports.

Applications concatenate :data:`LIBC_SOURCE` with their own source and
compile with :func:`repro.cc.compile_source`.
"""

LIBC_EXTERNS = r"""
// ---- WALI syscall imports (the complete set libc and apps rely on) ----
extern func SYS_read(fd: i32, buf: i32, n: i32) -> i64 from "wali";
extern func SYS_write(fd: i32, buf: i32, n: i32) -> i64 from "wali";
extern func SYS_openat(dirfd: i32, path: i32, flags: i32, mode: i32) -> i64 from "wali";
extern func SYS_close(fd: i32) -> i64 from "wali";
extern func SYS_lseek(fd: i32, off: i64, whence: i32) -> i64 from "wali";
extern func SYS_pread64(fd: i32, buf: i32, n: i32, off: i64) -> i64 from "wali";
extern func SYS_pwrite64(fd: i32, buf: i32, n: i32, off: i64) -> i64 from "wali";
extern func SYS_fstat(fd: i32, st: i32) -> i64 from "wali";
extern func SYS_newfstatat(dirfd: i32, path: i32, st: i32, flags: i32) -> i64 from "wali";
extern func SYS_access(path: i32, mode: i32) -> i64 from "wali";
extern func SYS_unlink(path: i32) -> i64 from "wali";
extern func SYS_mkdir(path: i32, mode: i32) -> i64 from "wali";
extern func SYS_rmdir(path: i32) -> i64 from "wali";
extern func SYS_rename(old: i32, new: i32) -> i64 from "wali";
extern func SYS_chdir(path: i32) -> i64 from "wali";
extern func SYS_getcwd(buf: i32, size: i32) -> i64 from "wali";
extern func SYS_getdents64(fd: i32, dirp: i32, count: i32) -> i64 from "wali";
extern func SYS_dup(fd: i32) -> i64 from "wali";
extern func SYS_dup2(oldfd: i32, newfd: i32) -> i64 from "wali";
extern func SYS_pipe2(fds: i32, flags: i32) -> i64 from "wali";
extern func SYS_fcntl(fd: i32, cmd: i32, arg: i32) -> i64 from "wali";
extern func SYS_ftruncate(fd: i32, len: i64) -> i64 from "wali";
extern func SYS_fsync(fd: i32) -> i64 from "wali";
extern func SYS_ioctl(fd: i32, req: i32, arg: i32) -> i64 from "wali";
extern func SYS_poll(fds: i32, nfds: i32, timeout: i32) -> i64 from "wali";

extern func SYS_mmap(addr: i32, len: i32, prot: i32, flags: i32, fd: i32, off: i64) -> i64 from "wali";
extern func SYS_munmap(addr: i32, len: i32) -> i64 from "wali";
extern func SYS_mremap(old: i32, oldsz: i32, newsz: i32, flags: i32, newaddr: i32) -> i64 from "wali";
extern func SYS_msync(addr: i32, len: i32, flags: i32) -> i64 from "wali";

extern func SYS_fork() -> i64 from "wali";
extern func SYS_execve(path: i32, argv: i32, envp: i32) -> i64 from "wali";
extern func SYS_exit(code: i32) -> i64 from "wali";
extern func SYS_exit_group(code: i32) -> i64 from "wali";
extern func SYS_wait4(pid: i32, status: i32, options: i32, rusage: i32) -> i64 from "wali";
extern func SYS_kill(pid: i32, sig: i32) -> i64 from "wali";
extern func SYS_getpid() -> i64 from "wali";
extern func SYS_gettid() -> i64 from "wali";
extern func SYS_getppid() -> i64 from "wali";
extern func SYS_getuid() -> i64 from "wali";
extern func SYS_clone(flags: i32, stack: i32, fn: i32, arg: i32) -> i64 from "wali";
extern func SYS_futex(uaddr: i32, op: i32, val: i32, timeout: i32, uaddr2: i32, val3: i32) -> i64 from "wali";
extern func SYS_sched_yield() -> i64 from "wali";
extern func SYS_nice(inc: i32) -> i64 from "wali";
extern func SYS_getpriority(which: i32, who: i32) -> i64 from "wali";
extern func SYS_setpriority(which: i32, who: i32, prio: i32) -> i64 from "wali";
extern func SYS_sched_getaffinity(pid: i32, size: i32, mask: i32) -> i64 from "wali";
extern func SYS_getrandom(buf: i32, len: i32, flags: i32) -> i64 from "wali";
extern func SYS_getrusage(who: i32, ru: i32) -> i64 from "wali";
extern func SYS_prlimit64(pid: i32, res: i32, newl: i32, oldl: i32) -> i64 from "wali";
extern func SYS_uname(buf: i32) -> i64 from "wali";
extern func SYS_sysinfo(buf: i32) -> i64 from "wali";

extern func SYS_rt_sigaction(sig: i32, act: i32, oldact: i32, size: i32) -> i64 from "wali";
extern func SYS_rt_sigprocmask(how: i32, set: i32, oldset: i32, size: i32) -> i64 from "wali";
extern func SYS_pause() -> i64 from "wali";
extern func SYS_alarm(sec: i32) -> i64 from "wali";
extern func SYS_nanosleep(req: i32, rem: i32) -> i64 from "wali";
extern func SYS_clock_gettime(clk: i32, ts: i32) -> i64 from "wali";

extern func SYS_inotify_init1(flags: i32) -> i64 from "wali";
extern func SYS_inotify_add_watch(fd: i32, path: i32, mask: i32) -> i64 from "wali";
extern func SYS_inotify_rm_watch(fd: i32, wd: i32) -> i64 from "wali";
extern func SYS_signalfd4(fd: i32, mask: i32, sizemask: i32, flags: i32) -> i64 from "wali";
extern func SYS_eventfd2(initval: i32, flags: i32) -> i64 from "wali";
extern func SYS_epoll_create1(flags: i32) -> i64 from "wali";
extern func SYS_epoll_ctl(epfd: i32, op: i32, fd: i32, ev: i32) -> i64 from "wali";
extern func SYS_epoll_pwait(epfd: i32, evs: i32, maxevents: i32, timeout: i32, sigmask: i32, sigsetsize: i32) -> i64 from "wali";
extern func SYS_timerfd_create(clockid: i32, flags: i32) -> i64 from "wali";
extern func SYS_timerfd_settime(fd: i32, flags: i32, newval: i32, oldval: i32) -> i64 from "wali";
extern func SYS_perf_event_open(attr: i32, pid: i32, cpu: i32, group: i32, flags: i32) -> i64 from "wali";
extern func SYS_io_uring_setup(entries: i32, params: i32) -> i64 from "wali";
extern func SYS_io_uring_enter(fd: i32, tosubmit: i32, mincomplete: i32, flags: i32, sig: i32, sigsz: i32) -> i64 from "wali";
extern func SYS_io_uring_register(fd: i32, opcode: i32, arg: i32, nargs: i32) -> i64 from "wali";

extern func SYS_socket(family: i32, type: i32, proto: i32) -> i64 from "wali";
extern func SYS_bind(fd: i32, addr: i32, len: i32) -> i64 from "wali";
extern func SYS_listen(fd: i32, backlog: i32) -> i64 from "wali";
extern func SYS_accept(fd: i32, addr: i32, lenp: i32) -> i64 from "wali";
extern func SYS_accept4(fd: i32, addr: i32, lenp: i32, flags: i32) -> i64 from "wali";
extern func SYS_connect(fd: i32, addr: i32, len: i32) -> i64 from "wali";
extern func SYS_sendto(fd: i32, buf: i32, len: i32, flags: i32, addr: i32, alen: i32) -> i64 from "wali";
extern func SYS_recvfrom(fd: i32, buf: i32, len: i32, flags: i32, addr: i32, alenp: i32) -> i64 from "wali";
extern func SYS_shutdown(fd: i32, how: i32) -> i64 from "wali";
extern func SYS_setsockopt(fd: i32, level: i32, opt: i32, val: i32, len: i32) -> i64 from "wali";

extern func get_argc() -> i32 from "wali";
extern func get_argv_len(i: i32) -> i32 from "wali";
extern func copy_argv(buf: i32, i: i32) -> i32 from "wali";
extern func get_envc() -> i32 from "wali";
extern func get_env_len(i: i32) -> i32 from "wali";
extern func copy_env(buf: i32, i: i32) -> i32 from "wali";
"""

LIBC_CORE = r"""
// ---- constants (Linux ABI) ----
const AT_FDCWD = -100;
const O_RDONLY = 0;
const O_WRONLY = 1;
const O_RDWR = 2;
const O_CREAT = 64;
const O_TRUNC = 512;
const O_APPEND = 1024;
const O_NONBLOCK = 2048;
const SEEK_SET = 0;
const SEEK_CUR = 1;
const SEEK_END = 2;
const PROT_READ = 1;
const PROT_WRITE = 2;
const MAP_PRIVATE = 2;
const MAP_ANONYMOUS = 32;
const SIGINT = 2;
const SIGKILL = 9;
const SIGUSR1 = 10;
const SIGUSR2 = 12;
const SIGALRM = 14;
const SIGTERM = 15;
const SIGCHLD = 17;
const SIG_BLOCK = 0;
const SIG_UNBLOCK = 1;
const SIG_SETMASK = 2;
const FUTEX_WAIT = 0;
const FUTEX_WAKE = 1;
const CLONE_THREAD_FLAGS = 0x10f00;  // VM|FS|FILES|SIGHAND|THREAD
const AF_INET = 2;
const SOCK_STREAM = 1;
const SOCK_NONBLOCK = 2048;
const EPOLL_CTL_ADD = 1;
const EPOLL_CTL_DEL = 2;
const EPOLL_CTL_MOD = 3;
const EPOLLIN = 1;
const EPOLLOUT = 4;
const EPOLLERR = 8;
const EPOLLHUP = 16;
const EAGAIN = 11;
const F_GETFL = 3;
const F_SETFL = 4;
const STDIN = 0;
const STDOUT = 1;
const STDERR = 2;

global errno: i32 = 0;

// ---- errno plumbing: negative syscall results become errno ----
func cret(r: i64) -> i32 {
    if (r < i64(0)) {
        errno = i32(i64(0) - r);
        return -1;
    }
    return i32(r);
}

// ---- string routines ----
func strlen(s: i32) -> i32 {
    var n: i32 = 0;
    while (load8u(s + n) != 0) { n = n + 1; }
    return n;
}

func strcmp(a: i32, b: i32) -> i32 {
    var i: i32 = 0;
    while (1) {
        var ca: i32 = load8u(a + i);
        var cb: i32 = load8u(b + i);
        if (ca != cb) { return ca - cb; }
        if (ca == 0) { return 0; }
        i = i + 1;
    }
    return 0;
}

func strncmp(a: i32, b: i32, n: i32) -> i32 {
    var i: i32 = 0;
    while (i < n) {
        var ca: i32 = load8u(a + i);
        var cb: i32 = load8u(b + i);
        if (ca != cb) { return ca - cb; }
        if (ca == 0) { return 0; }
        i = i + 1;
    }
    return 0;
}

func strcpy(dst: i32, src: i32) -> i32 {
    var n: i32 = strlen(src);
    memcopy(dst, src, n + 1);
    return dst;
}

func strcat(dst: i32, src: i32) -> i32 {
    strcpy(dst + strlen(dst), src);
    return dst;
}

func strchr(s: i32, c: i32) -> i32 {
    var i: i32 = 0;
    while (1) {
        var ch: i32 = load8u(s + i);
        if (ch == c) { return s + i; }
        if (ch == 0) { return 0; }
        i = i + 1;
    }
    return 0;
}

func memcmp(a: i32, b: i32, n: i32) -> i32 {
    var i: i32 = 0;
    while (i < n) {
        var d: i32 = load8u(a + i) - load8u(b + i);
        if (d != 0) { return d; }
        i = i + 1;
    }
    return 0;
}

func atoi(s: i32) -> i32 {
    var v: i32 = 0;
    var i: i32 = 0;
    var neg: i32 = 0;
    if (load8u(s) == '-') { neg = 1; i = 1; }
    while (load8u(s + i) >= '0' && load8u(s + i) <= '9') {
        v = v * 10 + (load8u(s + i) - '0');
        i = i + 1;
    }
    if (neg) { return 0 - v; }
    return v;
}

func itoa(v: i32, buf: i32) -> i32 {
    var p: i32 = buf;
    var x: i32 = v;
    if (x < 0) { store8(p, '-'); p = p + 1; x = 0 - x; }
    if (x == 0) { store8(p, '0'); store8(p + 1, 0); return (p + 1) - buf; }
    var n: i32 = 0;
    var t: i32 = x;
    while (t > 0) { n = n + 1; t = t / 10; }
    store8(p + n, 0);
    var i: i32 = n - 1;
    while (x > 0) {
        store8(p + i, '0' + x % 10);
        x = x / 10;
        i = i - 1;
    }
    return (p + n) - buf;
}

// djb2 string hash
func strhash(s: i32) -> i32 {
    var h: i32 = 5381;
    var i: i32 = 0;
    while (load8u(s + i) != 0) {
        h = h * 33 + load8u(s + i);
        i = i + 1;
    }
    return h;
}

// ---- heap: first-fit free list over WALI mmap (§3.2: allocators work
// unmodified over kernel interfaces) ----
global heap_lo: i32 = 0;
global heap_hi: i32 = 0;
global free_list: i32 = 0;   // node: {i32 size, i32 next}
const HEAP_CHUNK = 262144;   // 256 KiB mmap granules

func brk_more(need: i32) -> i32 {
    var sz: i32 = HEAP_CHUNK;
    while (sz < need) { sz = sz * 2; }
    var r: i64 = SYS_mmap(0, sz, PROT_READ | PROT_WRITE,
                          MAP_PRIVATE | MAP_ANONYMOUS, -1, i64(0));
    if (r < i64(0)) { return 0; }
    var base: i32 = i32(r);
    heap_lo = base;
    heap_hi = base + sz;
    return base;
}

func malloc(size: i32) -> i32 {
    if (size < 8) { size = 8; }
    size = (size + 7) & (0 - 8);
    // search free list (first fit)
    var prev: i32 = 0;
    var cur: i32 = free_list;
    while (cur != 0) {
        if (load32(cur) >= size) {
            if (prev == 0) { free_list = load32(cur + 4); }
            else { store32(prev + 4, load32(cur + 4)); }
            return cur + 8;
        }
        prev = cur;
        cur = load32(cur + 4);
    }
    // bump allocate
    if (heap_lo == 0 || heap_lo + size + 8 > heap_hi) {
        if (brk_more(size + 8) == 0) { errno = 12; return 0; }
    }
    var node: i32 = heap_lo;
    heap_lo = heap_lo + size + 8;
    store32(node, size);
    store32(node + 4, 0);
    return node + 8;
}

func free(p: i32) {
    if (p == 0) { return; }
    var node: i32 = p - 8;
    store32(node + 4, free_list);
    free_list = node;
}

func calloc(n: i32, size: i32) -> i32 {
    var p: i32 = malloc(n * size);
    if (p != 0) { memfill(p, 0, n * size); }
    return p;
}

func realloc(p: i32, size: i32) -> i32 {
    if (p == 0) { return malloc(size); }
    var old: i32 = load32(p - 8);
    if (old >= size) { return p; }
    var q: i32 = malloc(size);
    if (q == 0) { return 0; }
    memcopy(q, p, old);
    free(p);
    return q;
}

// ---- stdio ----
buffer __io_buf[64];

func write_all(fd: i32, buf: i32, n: i32) -> i32 {
    var done: i32 = 0;
    while (done < n) {
        var r: i32 = cret(SYS_write(fd, buf + done, n - done));
        if (r < 0) { return -1; }
        done = done + r;
    }
    return done;
}

func fputs(fd: i32, s: i32) -> i32 {
    return write_all(fd, s, strlen(s));
}

func print(s: i32) { fputs(STDOUT, s); }

func println(s: i32) {
    fputs(STDOUT, s);
    fputs(STDOUT, "\n");
}

func print_int(v: i32) {
    itoa(v, __io_buf);
    fputs(STDOUT, __io_buf);
}

func eprint(s: i32) { fputs(STDERR, s); }

func open(path: i32, flags: i32, mode: i32) -> i32 {
    return cret(SYS_openat(AT_FDCWD, path, flags, mode));
}

func close(fd: i32) -> i32 { return cret(SYS_close(fd)); }

func read(fd: i32, buf: i32, n: i32) -> i32 {
    return cret(SYS_read(fd, buf, n));
}

func write(fd: i32, buf: i32, n: i32) -> i32 {
    return cret(SYS_write(fd, buf, n));
}

// read one line (up to n-1 bytes); returns length, -1 on EOF
func read_line(fd: i32, buf: i32, n: i32) -> i32 {
    var i: i32 = 0;
    while (i < n - 1) {
        var r: i32 = read(fd, buf + i, 1);
        if (r <= 0) {
            if (i == 0) { return -1; }
            break;
        }
        if (load8u(buf + i) == 10) { break; }
        i = i + 1;
    }
    store8(buf + i, 0);
    return i;
}

// ---- process helpers ----
func exit(code: i32) { SYS_exit_group(code); }

func fork() -> i32 { return cret(SYS_fork()); }

func waitpid(pid: i32, status_ptr: i32) -> i32 {
    return cret(SYS_wait4(pid, status_ptr, 0, 0));
}

func execve(path: i32, argv: i32, envp: i32) -> i32 {
    return cret(SYS_execve(path, argv, envp));
}

// ---- argv/env (§3.4: libc owns the argument vectors) ----
global __argc: i32 = 0;
global __argv: i32 = 0;   // i32* array of pointers

func __init_args() {
    __argc = get_argc();
    __argv = malloc((__argc + 1) * 4);
    var i: i32 = 0;
    while (i < __argc) {
        var len: i32 = get_argv_len(i);
        var s: i32 = malloc(len);
        copy_argv(s, i);
        store32(__argv + i * 4, s);
        i = i + 1;
    }
    store32(__argv + __argc * 4, 0);
}

func argc() -> i32 { return __argc; }
func argv(i: i32) -> i32 { return load32(__argv + i * 4); }

buffer __env_tmp[256];

func getenv(name: i32) -> i32 {
    var n: i32 = get_envc();
    var nl: i32 = strlen(name);
    var i: i32 = 0;
    while (i < n) {
        copy_env(__env_tmp, i);
        if (strncmp(__env_tmp, name, nl) == 0 && load8u(__env_tmp + nl) == '=') {
            return __env_tmp + nl + 1;
        }
        i = i + 1;
    }
    return 0;
}

// ---- signals ----
buffer __sa_buf[16];

func signal(sig: i32, handler_ref: i32) -> i32 {
    store32(__sa_buf, handler_ref);
    store32(__sa_buf + 4, 0);
    store64(__sa_buf + 8, i64(0));
    return cret(SYS_rt_sigaction(sig, __sa_buf, 0, 8));
}

buffer __mask_buf[8];

func sigblock(sig: i32) -> i32 {
    store64(__mask_buf, i64(1) << i64(sig - 1));
    return cret(SYS_rt_sigprocmask(SIG_BLOCK, __mask_buf, 0, 8));
}

func sigunblock(sig: i32) -> i32 {
    store64(__mask_buf, i64(1) << i64(sig - 1));
    return cret(SYS_rt_sigprocmask(SIG_UNBLOCK, __mask_buf, 0, 8));
}

// ---- threads & locks (instance-per-thread over WALI clone, §3.1) ----
func thread_create(fn_ref: i32, arg: i32) -> i32 {
    return cret(SYS_clone(CLONE_THREAD_FLAGS, 0, fn_ref, arg));
}

func mutex_lock(m: i32) {
    while (atomic_cas32(m, 0, 1) != 0) {
        SYS_futex(m, FUTEX_WAIT, 1, 0, 0, 0);
    }
}

func mutex_unlock(m: i32) {
    atomic_cas32(m, 1, 0);
    SYS_futex(m, FUTEX_WAKE, 1, 0, 0, 0);
}

// ---- sockets ----
buffer __sa_in[16];

func make_sockaddr(ip_a: i32, ip_b: i32, ip_c: i32, ip_d: i32, port: i32) -> i32 {
    store16(__sa_in, AF_INET);
    store8(__sa_in + 2, (port >> 8) & 255);
    store8(__sa_in + 3, port & 255);
    store8(__sa_in + 4, ip_a);
    store8(__sa_in + 5, ip_b);
    store8(__sa_in + 6, ip_c);
    store8(__sa_in + 7, ip_d);
    store64(__sa_in + 8, i64(0));
    return __sa_in;
}

func tcp_listen(port: i32, backlog: i32) -> i32 {
    var fd: i32 = cret(SYS_socket(AF_INET, SOCK_STREAM, 0));
    if (fd < 0) { return -1; }
    if (cret(SYS_bind(fd, make_sockaddr(127, 0, 0, 1, port), 16)) < 0) {
        close(fd);
        return -1;
    }
    if (cret(SYS_listen(fd, backlog)) < 0) { close(fd); return -1; }
    return fd;
}

buffer __optval[4];

func tcp_connect(port: i32) -> i32 {
    var fd: i32 = cret(SYS_socket(AF_INET, SOCK_STREAM, 0));
    if (fd < 0) { return -1; }
    store32(__optval, 1);
    SYS_setsockopt(fd, 6, 1, __optval, 4);  // IPPROTO_TCP, TCP_NODELAY
    if (cret(SYS_connect(fd, make_sockaddr(127, 0, 0, 1, port), 16)) < 0) {
        close(fd);
        return -1;
    }
    return fd;
}

// ---- event-driven I/O: epoll + nonblocking fds ----
buffer __ep_ev[12];   // scratch epoll_event: {u32 events, u64 data}

func set_nonblock(fd: i32) -> i32 {
    var fl: i32 = cret(SYS_fcntl(fd, F_GETFL, 0));
    if (fl < 0) { return -1; }
    return cret(SYS_fcntl(fd, F_SETFL, fl | O_NONBLOCK));
}

func epoll_ctl_fd(epfd: i32, op: i32, fd: i32, events: i32) -> i32 {
    store32(__ep_ev, events);
    store32(__ep_ev + 4, fd);    // event data low word = fd
    store32(__ep_ev + 8, 0);
    return cret(SYS_epoll_ctl(epfd, op, fd, __ep_ev));
}

func epoll_add(epfd: i32, fd: i32, events: i32) -> i32 {
    return epoll_ctl_fd(epfd, EPOLL_CTL_ADD, fd, events);
}

func epoll_del(epfd: i32, fd: i32) -> i32 {
    return epoll_ctl_fd(epfd, EPOLL_CTL_DEL, fd, 0);
}

// evs is an array of 12-byte epoll_events; returns the ready count
func epoll_wait(epfd: i32, evs: i32, maxevents: i32, timeout_ms: i32) -> i32 {
    return cret(SYS_epoll_pwait(epfd, evs, maxevents, timeout_ms, 0, 8));
}

func ev_events(evs: i32, i: i32) -> i32 { return load32(evs + i * 12); }
func ev_fd(evs: i32, i: i32) -> i32 { return load32(evs + i * 12 + 4); }

// ---- filesystem events: inotify ----
const IN_MODIFY = 2;
const IN_ATTRIB = 4;
const IN_CLOSE_WRITE = 8;
const IN_MOVED_FROM = 64;
const IN_MOVED_TO = 128;
const IN_CREATE = 256;
const IN_DELETE = 512;
const IN_DELETE_SELF = 1024;
const IN_MOVE_SELF = 2048;
const IN_Q_OVERFLOW = 16384;
const IN_IGNORED = 32768;
const IN_NONBLOCK = 2048;   // flag for inotify_init1 (== O_NONBLOCK)

func inotify_init() -> i32 { return cret(SYS_inotify_init1(0)); }

func inotify_watch(fd: i32, path: i32, mask: i32) -> i32 {
    return cret(SYS_inotify_add_watch(fd, path, mask));
}

func inotify_unwatch(fd: i32, wd: i32) -> i32 {
    return cret(SYS_inotify_rm_watch(fd, wd));
}

// accessors over a read buffer of inotify_event records: p points at one
// record; in_next steps to the following record
func in_wd(p: i32) -> i32 { return load32(p); }
func in_mask(p: i32) -> i32 { return load32(p + 4); }
func in_cookie(p: i32) -> i32 { return load32(p + 8); }
func in_name(p: i32) -> i32 { return p + 16; }
func in_next(p: i32) -> i32 { return p + 16 + load32(p + 12); }

// ---- synchronous signal consumption: signalfd ----
buffer __sfd_mask[8];

// block sig and open a signalfd draining it (the standard usage: the
// default/sigvirt delivery path must not race the fd)
func signalfd_for(sig: i32) -> i32 {
    sigblock(sig);
    store64(__sfd_mask, i64(1) << i64(sig - 1));
    return cret(SYS_signalfd4(0 - 1, __sfd_mask, 8, 0));
}

// first field of a signalfd_siginfo record (128 bytes each)
func sfd_signo(p: i32) -> i32 { return load32(p); }
func sfd_pid(p: i32) -> i32 { return load32(p + 12); }

// ---- batched I/O: io_uring-style submission/completion ring ----
// One ring per process (globals): the guest queues SQEs into its own
// linear-memory SQ array and reaps CQEs from its CQ array — only
// uring_submit / uring_reap_batch cross the guest<->host boundary, so a
// whole batch of accept/recv/send costs one crossing.
const IORING_OP_NOP = 0;
const IORING_OP_READ = 1;
const IORING_OP_WRITE = 2;
const IORING_OP_ACCEPT = 3;
const IORING_OP_SEND = 4;
const IORING_OP_RECV = 5;
const IORING_OP_POLL_ADD = 6;
const IORING_OP_TIMEOUT = 7;
const IORING_OP_READ_FIXED = 9;
const IOSQE_IO_LINK = 4;
const IOSQE_CQE_SKIP_SUCCESS = 64;
const IOSQE_FIXED_BUFFER = 128;
const IORING_ENTER_GETEVENTS = 1;
const IORING_ENTER_SQ_WAKEUP = 2;
const IORING_ENTER_TIMEOUT_MS = 16;
const IORING_SETUP_SQPOLL = 2;
const IORING_REGISTER_BUFFERS = 1;
const IORING_ACCEPT_MULTISHOT = 1;
const IORING_RECV_MULTISHOT = 2;
const IORING_CQE_F_BUFFER = 1;
const IORING_CQE_F_MORE = 2;
const IORING_SQ_CQ_OVERFLOW = 1;
const IORING_SQ_NEED_WAKEUP = 2;

global __uring_fd: i32 = -1;
global __uring_base: i32 = 0;
global __uring_sqn: i32 = 0;
global __uring_cqn: i32 = 0;
// entries are powers of two: index with masks, not division
global __uring_sqmask: i32 = 0;
global __uring_cqmask: i32 = 0;
global __uring_sqbase: i32 = 0;
global __uring_cqbase: i32 = 0;
// {u32 sq_entries, u32 cq_entries} written back by the engine,
// {u32 flags, u32 sq_thread_idle_ms} filled in by the guest
buffer __uring_params[16];

// create the ring, allocate the shared region (header + SQ + CQ) and
// register it with the engine; returns the ring fd or -1
func uring_init(entries: i32) -> i32 {
    return uring_init2(entries, 0, 0);
}

// the full form: flags (IORING_SETUP_SQPOLL) and the SQPOLL idle
// window in ms (0 takes the engine default)
func uring_init2(entries: i32, flags: i32, idle_ms: i32) -> i32 {
    store32(__uring_params, 0);
    store32(__uring_params + 4, 0);
    store32(__uring_params + 8, flags);
    store32(__uring_params + 12, idle_ms);
    var fd: i32 = cret(SYS_io_uring_setup(entries, __uring_params));
    if (fd < 0) { return -1; }
    var sqn: i32 = load32(__uring_params);
    var cqn: i32 = load32(__uring_params + 4);
    var base: i32 = malloc(32 + sqn * 32 + cqn * 16);
    if (base == 0) { close(fd); return -1; }
    memfill(base, 0, 32 + sqn * 32 + cqn * 16);
    store32(base + 8, sqn);
    store32(base + 20, cqn);
    if (cret(SYS_io_uring_register(fd, 0, base, 1)) < 0) {
        free(base);
        close(fd);
        return -1;
    }
    __uring_fd = fd;
    __uring_base = base;
    __uring_sqn = sqn;
    __uring_cqn = cqn;
    __uring_sqmask = sqn - 1;
    __uring_cqmask = cqn - 1;
    __uring_sqbase = base + 32;
    __uring_cqbase = base + 32 + sqn * 32;
    return fd;
}

// queue one SQE guest-side (no crossing); -1 when the SQ ring is full
func uring_sqe(op: i32, fd: i32, addr: i32, len: i32, udata: i32, flags: i32) -> i32 {
    var head: i32 = load32(__uring_base);
    var tail: i32 = load32(__uring_base + 4);
    if (tail - head >= __uring_sqn) { return -1; }
    var p: i32 = __uring_sqbase + (tail & __uring_sqmask) * 32;
    store8(p, op);
    store8(p + 1, flags);
    store16(p + 2, 0);
    store32(p + 4, fd);
    store32(p + 8, addr);
    store32(p + 12, len);
    store64(p + 16, i64(0));
    store64(p + 24, i64(udata));
    store32(__uring_base + 4, tail + 1);
    return 0;
}

// hot-path SQE writer for event loops: the first SQE word arrives
// pre-packed (opcode | flags << 8), one call frame, five stores; a
// momentarily full SQ ring is flushed with one extra crossing.  The
// off field stays zero from uring_init, so it only suits ops that
// ignore it (READ/WRITE/ACCEPT/SEND/RECV).
func uring_push(opf: i32, fd: i32, addr: i32, len: i32, ud: i32) {
    var tail: i32 = load32(__uring_base + 4);
    if (tail - load32(__uring_base) >= __uring_sqn) {
        uring_submit();
        tail = load32(__uring_base + 4);
    }
    var p: i32 = __uring_sqbase + (tail & __uring_sqmask) * 32;
    store32(p, opf);
    store32(p + 4, fd);
    store32(p + 8, addr);
    store32(p + 12, len);
    store32(p + 24, ud);
    store32(p + 28, 0);
    store32(__uring_base + 4, tail + 1);
}

// common pre-packed first words for uring_push
const OPF_SEND_QUIET = 16388;   // SEND | CQE_SKIP_SUCCESS << 8
const OPF_SEND_LINKED = 17412;  // SEND | (IO_LINK | CQE_SKIP_SUCCESS) << 8

// POLL_ADD (events ride the off field) and TIMEOUT (ns deadline) SQEs
func uring_poll_add(fd: i32, events: i32, udata: i32) -> i32 {
    if (uring_sqe(IORING_OP_POLL_ADD, fd, 0, 0, udata, 0) < 0) { return -1; }
    var tail: i32 = load32(__uring_base + 4) - 1;
    store64(__uring_sqbase + (tail & __uring_sqmask) * 32 + 16, i64(events));
    return 0;
}

func uring_timeout_ms(ms: i32, udata: i32) -> i32 {
    if (uring_sqe(IORING_OP_TIMEOUT, -1, 0, 0, udata, 0) < 0) { return -1; }
    var tail: i32 = load32(__uring_base + 4) - 1;
    store64(__uring_sqbase + (tail & __uring_sqmask) * 32 + 16,
            i64(ms) * i64(1000000));
    return 0;
}

// pending (queued, unsubmitted) SQE count
func uring_sq_pending() -> i32 {
    return load32(__uring_base + 4) - load32(__uring_base);
}

// submit everything queued without waiting; returns submitted count
func uring_submit() -> i32 {
    return cret(SYS_io_uring_enter(__uring_fd, uring_sq_pending(), 0,
                                   IORING_ENTER_GETEVENTS, 0, 0));
}

// submit everything queued and wait until at least min_complete CQEs
// are reapable (timeout_ms <= 0 waits indefinitely); one crossing per
// call.  returns the number of CQEs now waiting in the CQ ring.
func uring_reap_batch(min_complete: i32, timeout_ms: i32) -> i32 {
    var flags: i32 = IORING_ENTER_GETEVENTS;
    var sig: i32 = 0;
    if (timeout_ms > 0) {
        flags = flags | IORING_ENTER_TIMEOUT_MS;
        sig = timeout_ms;
    }
    if (cret(SYS_io_uring_enter(__uring_fd, uring_sq_pending(),
                                min_complete, flags, sig, 0)) < 0) {
        return -1;
    }
    return uring_cq_ready();
}

// CQ-side accessors: all guest-memory reads, no crossings
func uring_cq_ready() -> i32 {
    return load32(__uring_base + 16) - load32(__uring_base + 12);
}

func uring_cqe_ptr(i: i32) -> i32 {
    var head: i32 = load32(__uring_base + 12);
    return __uring_cqbase + ((head + i) & __uring_cqmask) * 16;
}

func uring_cqe_data(i: i32) -> i32 { return i32(load64(uring_cqe_ptr(i))); }
func uring_cqe_res(i: i32) -> i32 { return load32(uring_cqe_ptr(i) + 8); }
func uring_cqe_flags(i: i32) -> i32 { return load32(uring_cqe_ptr(i) + 12); }
func uring_cq_advance(n: i32) {
    store32(__uring_base + 12, load32(__uring_base + 12) + n);
}

// kernel-mirrored header flags: CQ_OVERFLOW / SQPOLL NEED_WAKEUP bits
func uring_ring_flags() -> i32 { return load32(__uring_base + 28); }

// ---- zero-crossing extensions: registered buffers, multishot, SQPOLL ----

// register a buffer table: tab points at n {u32 addr, u32 len} iovecs.
// The engine translates every slot ONCE; fixed-buffer SQEs then name a
// slot index instead of a pointer and skip per-op translation.
func uring_register_buffers(tab: i32, n: i32) -> i32 {
    return cret(SYS_io_uring_register(__uring_fd, IORING_REGISTER_BUFFERS,
                                      tab, n));
}

// arm a multishot accept: the one SQE posts a CQE (flagged
// IORING_CQE_F_MORE) per accepted connection until error/cancel
func uring_accept_multishot(fd: i32, udata: i32) -> i32 {
    if (uring_sqe(IORING_OP_ACCEPT, fd, 0, 0, udata, 0) < 0) { return -1; }
    var tail: i32 = load32(__uring_base + 4) - 1;
    store64(__uring_sqbase + (tail & __uring_sqmask) * 32 + 16,
            i64(IORING_ACCEPT_MULTISHOT));
    return 0;
}

// arm a multishot recv completing into registered slot idx: a CQE per
// inbound message, data landing in the slot, until EOF/error (no MORE
// flag on the final CQE)
func uring_recv_multishot(fd: i32, idx: i32, len: i32, udata: i32) -> i32 {
    if (uring_sqe(IORING_OP_RECV, fd, idx, len, udata,
                  IOSQE_FIXED_BUFFER) < 0) { return -1; }
    var tail: i32 = load32(__uring_base + 4) - 1;
    store64(__uring_sqbase + (tail & __uring_sqmask) * 32 + 16,
            i64(IORING_RECV_MULTISHOT));
    return 0;
}

// SQPOLL: queued SQEs are consumed by the kernel poller straight from
// the shared ring — the only crossing ever paid is the wakeup kick
// when the poller idled out (NEED_WAKEUP raised in the header)
func uring_sqpoll_flush() -> i32 {
    if ((uring_ring_flags() & IORING_SQ_NEED_WAKEUP) != 0) {
        return cret(SYS_io_uring_enter(__uring_fd, 0, 0,
                                       IORING_ENTER_SQ_WAKEUP, 0, 0));
    }
    return 0;
}

// SQPOLL: wait until at least min_complete CQEs are reapable.  The CQ
// ring is checked first — the poller publishes completions without any
// crossing, so a loaded loop never enters at all.
func uring_sqpoll_wait(min_complete: i32, timeout_ms: i32) -> i32 {
    uring_sqpoll_flush();
    if (uring_cq_ready() >= min_complete) { return uring_cq_ready(); }
    var flags: i32 = IORING_ENTER_GETEVENTS;
    var sig: i32 = 0;
    if (timeout_ms > 0) {
        flags = flags | IORING_ENTER_TIMEOUT_MS;
        sig = timeout_ms;
    }
    if (cret(SYS_io_uring_enter(__uring_fd, 0, min_complete, flags,
                                sig, 0)) < 0) {
        return -1;
    }
    return uring_cq_ready();
}

// ---- perf events: the guest profiling surface ----
// attr (24 bytes): {u32 type, u32 config_ptr, u64 sample_freq,
//                   u32 ring_capacity, u32 disabled}
const PERF_TYPE_COUNTER = 0;
const PERF_TYPE_TRACEPOINT = 1;
const PERF_TYPE_SAMPLING = 2;
const PERF_IOC_ENABLE = 0x2400;
const PERF_IOC_DISABLE = 0x2401;
const PERF_IOC_RESET = 0x2403;

buffer __perf_attr[24];
buffer __perf_val[8];

// pid scoping follows perf_event_open: 0 = self, -1 = system-wide
func perf_open_scoped(type: i32, config: i32, freq: i64, capacity: i32, pid: i32) -> i32 {
    store32(__perf_attr, type);
    store32(__perf_attr + 4, config);
    store64(__perf_attr + 8, freq);
    store32(__perf_attr + 16, capacity);
    store32(__perf_attr + 20, 0);
    return cret(SYS_perf_event_open(__perf_attr, pid, -1, -1, 0));
}

func perf_open_sampler(freq: i32, pid: i32) -> i32 {
    return perf_open_scoped(PERF_TYPE_SAMPLING, 0, i64(freq), 0, pid);
}

func perf_open_counter(name: i32, pid: i32) -> i32 {
    return perf_open_scoped(PERF_TYPE_COUNTER, name, i64(0), 0, pid);
}

func perf_open_tracepoint(name: i32, pid: i32) -> i32 {
    return perf_open_scoped(PERF_TYPE_TRACEPOINT, name, i64(0), 0, pid);
}

func perf_enable(fd: i32) -> i32 { return cret(SYS_ioctl(fd, PERF_IOC_ENABLE, 0)); }
func perf_disable(fd: i32) -> i32 { return cret(SYS_ioctl(fd, PERF_IOC_DISABLE, 0)); }
func perf_reset(fd: i32) -> i32 { return cret(SYS_ioctl(fd, PERF_IOC_RESET, 0)); }

// counting events: the 8-byte little-endian value, non-consuming
func perf_read_count(fd: i32) -> i64 {
    if (cret(SYS_read(fd, __perf_val, 8)) < 8) { return i64(0) - i64(1); }
    return load64(__perf_val);
}

// sample-record accessors (header <IHH: size/type/misc, then the
// <QiiQI body and nframes x {u16 len, name bytes})
func ps_size(p: i32) -> i32 { return load32(p); }
func ps_type(p: i32) -> i32 { return load16u(p + 4); }
func ps_time_lo(p: i32) -> i32 { return i32(load64(p + 8)); }
func ps_pid(p: i32) -> i32 { return load32(p + 16); }
func ps_nice(p: i32) -> i32 { return load32(p + 20); }
func ps_nframes(p: i32) -> i32 { return load32(p + 32); }
// frame i's {len, name_ptr}: walk the variable-length tail
func ps_frame(p: i32, i: i32) -> i32 {
    var q: i32 = p + 36;
    var n: i32 = 0;
    while (n < i) {
        q = q + 2 + load16u(q);
        n = n + 1;
    }
    return q;
}
func ps_frame_len(f: i32) -> i32 { return load16u(f); }
func ps_frame_name(f: i32) -> i32 { return f + 2; }

// ---- time ----
buffer __ts_buf[16];

func monotime_ms() -> i32 {
    SYS_clock_gettime(1, __ts_buf);
    return i32(load64(__ts_buf) * i64(1000) + load64(__ts_buf + 8) / i64(1000000));
}

func sleep_ms(ms: i32) {
    store64(__ts_buf, i64(ms / 1000));
    store64(__ts_buf + 8, i64(ms % 1000) * i64(1000000));
    SYS_nanosleep(__ts_buf, 0);
}

// ---- scheduling ----
func getnice() -> i32 { return 20 - i32(SYS_getpriority(0, 0)); }
// glibc convention: returns the new nice value (raw syscall returns 0)
func nice(inc: i32) -> i32 {
    var r: i32 = i32(SYS_nice(inc));
    if (r < 0) { return r; }
    return getnice();
}
"""

LIBC_SOURCE = LIBC_EXTERNS + LIBC_CORE


def with_libc(app_source: str) -> str:
    """Concatenate the guest libc with application source."""
    return LIBC_SOURCE + "\n" + app_source
