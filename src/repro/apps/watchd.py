"""watchd: a file-watcher / log-tailer over inotify + signalfd.

One guest process plays both sides: a **mutator thread** appends lines to
a log file and churns the watched directory (create, cookie-paired
rename, delete) for ``rounds`` rounds, then raises ``SIGUSR1``; the
**watcher** (main thread) holds an inotify fd (directory watch for
namespace events + file watch for the log) and a signalfd in one
readiness loop, tails the log on ``IN_CLOSE_WRITE`` and verifies every
rename's ``IN_MOVED_FROM``/``IN_MOVED_TO`` cookie pair.

Two serving modes, mirroring the repository's other event-loop apps:

* **epoll** (default): ``epoll_pwait`` over the inotify fd and the
  signalfd; one ``read`` crossing per readiness edge,
* **ring** (``-u``): ``IORING_OP_READ`` SQEs parked on both fds; one
  ``io_uring_enter`` crossing reaps batches of event records and the
  siginfo — the inotify queue drains through the shared ring memory.

``argv: watchd [rounds] [-u]``.  Output is deterministic::

    watchd ok lines=R creates=R moves=R dels=R sig=1
"""

from .libc import with_libc

WATCHD_SOURCE = with_libc(r"""
global rounds: i32 = 8;

// ---- mutator thread: the event source ----
buffer mline[64];

func mutate(arg: i32) {
    var i: i32 = 0;
    while (i < rounds) {
        // append one line to the log, close (-> IN_MODIFY, IN_CLOSE_WRITE)
        var fd: i32 = open("/tmp/watch/app.log", O_WRONLY | O_APPEND, 420);
        strcpy(mline, "line ");
        itoa(i, mline + 5);
        strcat(mline, "\n");
        write_all(fd, mline, strlen(mline));
        close(fd);
        // churn the directory: create, rename (cookie pair), delete
        var t: i32 = open("/tmp/watch/tmpf", O_CREAT | O_WRONLY, 420);
        close(t);
        SYS_rename("/tmp/watch/tmpf", "/tmp/watch/gone");
        SYS_unlink("/tmp/watch/gone");
        i = i + 1;
    }
    SYS_kill(i32(SYS_getpid()), SIGUSR1);
}

// ---- watcher state ----
global wdir: i32 = 0;      // watch descriptor: the directory
global wlog: i32 = 0;      // watch descriptor: the log file
global tailfd: i32 = -1;   // read fd tailing the log

global lines: i32 = 0;
global creates: i32 = 0;
global moves: i32 = 0;     // completed cookie pairs
global dels: i32 = 0;
global sig_seen: i32 = 0;
global pending_cookie: i32 = 0;

buffer tbuf[256];

// drain freshly-appended log bytes (the tail -F recipe: the read offset
// persists on tailfd, so each IN_CLOSE_WRITE reads only what is new)
func tail_log() {
    while (1) {
        var r: i32 = read(tailfd, tbuf, 256);
        if (r <= 0) { break; }
        var i: i32 = 0;
        while (i < r) {
            if (load8u(tbuf + i) == 10) { lines = lines + 1; }
            i = i + 1;
        }
    }
}

// walk `n` bytes of inotify_event records at `p`
func handle_events(p: i32, n: i32) {
    var end: i32 = p + n;
    while (p < end) {
        var wd: i32 = in_wd(p);
        var mask: i32 = in_mask(p);
        if (wd == wdir) {
            if (mask & IN_CREATE) { creates = creates + 1; }
            if (mask & IN_DELETE) { dels = dels + 1; }
            if (mask & IN_MOVED_FROM) { pending_cookie = in_cookie(p); }
            if (mask & IN_MOVED_TO) {
                if (in_cookie(p) == pending_cookie && pending_cookie != 0) {
                    moves = moves + 1;
                    pending_cookie = 0;
                }
            }
        } else { if (wd == wlog) {
            if (mask & IN_CLOSE_WRITE) { tail_log(); }
        }}
        p = in_next(p);
    }
}

func finished() -> i32 {
    // the unlink is the last fs op of every round and records are FIFO,
    // so seeing the final IN_DELETE after SIGUSR1 means we saw it all
    if (sig_seen && dels >= rounds) { return 1; }
    return 0;
}

// ---- epoll serving mode ----
buffer evbuf[96];      // 8 epoll_events
buffer inbuf[512];
buffer sibuf[128];

func ep_watch(ifd: i32, sfd: i32) {
    var ep: i32 = cret(SYS_epoll_create1(0));
    epoll_add(ep, ifd, EPOLLIN);
    epoll_add(ep, sfd, EPOLLIN);
    while (finished() == 0) {
        var n: i32 = epoll_wait(ep, evbuf, 8, 5000);
        if (n <= 0) { break; }   // stall guard
        var i: i32 = 0;
        while (i < n) {
            var fd: i32 = ev_fd(evbuf, i);
            if (fd == ifd) {
                var r: i32 = read(ifd, inbuf, 512);
                if (r > 0) { handle_events(inbuf, r); }
            } else { if (fd == sfd) {
                var r2: i32 = read(sfd, sibuf, 128);
                if (r2 >= 128 && sfd_signo(sibuf) == SIGUSR1) {
                    sig_seen = 1;
                }
            }}
            i = i + 1;
        }
    }
}

// ---- ring serving mode: READ SQEs parked on both fds ----
const UD_INOTIFY = 1;
const UD_SIGNAL = 2;

func ur_watch(ifd: i32, sfd: i32) {
    if (uring_init(16) < 0) { eprint("watchd: no ring\n"); exit(1); }
    uring_sqe(IORING_OP_READ, ifd, inbuf, 512, UD_INOTIFY, 0);
    uring_sqe(IORING_OP_READ, sfd, sibuf, 128, UD_SIGNAL, 0);
    while (finished() == 0) {
        var n: i32 = uring_reap_batch(1, 5000);
        if (n <= 0) { break; }   // stall guard
        var i: i32 = 0;
        while (i < n) {
            var ud: i32 = uring_cqe_data(i);
            var res: i32 = uring_cqe_res(i);
            if (ud == UD_INOTIFY) {
                if (res > 0) { handle_events(inbuf, res); }
                if (finished() == 0) {
                    uring_sqe(IORING_OP_READ, ifd, inbuf, 512, UD_INOTIFY, 0);
                }
            } else { if (ud == UD_SIGNAL) {
                if (res >= 128 && sfd_signo(sibuf) == SIGUSR1) {
                    sig_seen = 1;
                }
            }}
            i = i + 1;
        }
        uring_cq_advance(n);
    }
}

export func _start() {
    __init_args();
    var ring_mode: i32 = 0;
    if (argc() > 1) { rounds = atoi(argv(1)); }
    if (argc() > 2) {
        if (strcmp(argv(2), "-u") == 0) { ring_mode = 1; }
    }
    if (rounds < 1) { rounds = 1; }

    SYS_mkdir("/tmp/watch", 493);
    var lf: i32 = open("/tmp/watch/app.log", O_CREAT | O_WRONLY, 420);
    close(lf);
    tailfd = open("/tmp/watch/app.log", O_RDONLY, 0);

    var ifd: i32 = cret(SYS_inotify_init1(IN_NONBLOCK));
    wdir = inotify_watch(ifd, "/tmp/watch",
                         IN_CREATE | IN_DELETE | IN_MOVED_FROM | IN_MOVED_TO);
    wlog = inotify_watch(ifd, "/tmp/watch/app.log",
                         IN_MODIFY | IN_CLOSE_WRITE);
    var sfd: i32 = signalfd_for(SIGUSR1);
    if (ifd < 0 || wdir < 0 || wlog < 0 || sfd < 0) {
        eprint("watchd: setup failed\n");
        exit(1);
    }

    thread_create(funcref(mutate), 0);
    if (ring_mode) { ur_watch(ifd, sfd); }
    else { ep_watch(ifd, sfd); }

    print("watchd ok lines=");
    print_int(lines);
    print(" creates=");
    print_int(creates);
    print(" moves=");
    print_int(moves);
    print(" dels=");
    print_int(dels);
    print(" sig=");
    print_int(sig_seen);
    println("");
    exit(0);
}
""")
