"""repro — a reproduction of "Empowering WebAssembly with Thin Kernel
Interfaces" (EuroSys 2025).

Subpackages
===========

``repro.wasm``
    The WebAssembly engine: module model, binary codec, validator,
    explicit-state interpreter, compiled ("AoT") tier.
``repro.kernel``
    The virtual Linux substrate: VFS/procfs, fds/pipes, processes and
    clone-flag sharing, signals, mmap, futex, loopback sockets, per-ISA
    syscall tables.
``repro.wali``
    The paper's core contribution: the WebAssembly Linux Interface —
    ~150 name-bound syscalls with address-space translation, the mmap
    pool, virtual signals at safepoints, the 1-to-1 process model and
    security interpositions.
``repro.wasi``
    WASI preview1 implemented natively *and* layered over WALI (§4.1),
    plus the Table 1 porting matrix.
``repro.wazi``
    The recipe applied to Zephyr RTOS (§5.1), auto-generated from a
    syscall encoding.
``repro.cc``
    The mini-C toolchain guest software is compiled with.
``repro.apps``
    Guest software: libc + the application suite (shell, interpreter,
    database, KV server, MQTT, coreutils).
``repro.virt``
    Virtualization baselines for Fig. 8: native, Docker-like containers,
    QEMU-like emulation.
``repro.metrics``
    Syscall profiling (Fig. 2), runtime breakdown (Fig. 7), reporting.

Quickstart
==========

>>> from repro import WaliRuntime, compile_source, with_libc
>>> rt = WaliRuntime()
>>> mod = compile_source(with_libc('export func _start() { println("hi"); exit(0); }'))
>>> rt.run(mod)
0
>>> rt.kernel.console_output()
b'hi\\n'
"""

from .apps import build as build_app, install_all, with_libc
from .cc import CompileError, compile_source
from .kernel import Kernel, KernelError
from .wali import SecurityPolicy, WaliRuntime
from .wasi import run_wasi_module
from .wazi import WaziRuntime
from .wasm import (
    Machine, Module, ModuleBuilder, Trap, decode_module, encode_module,
    instantiate, validate_module,
)

__version__ = "1.0.0"

__all__ = [
    "CompileError", "Kernel", "KernelError", "Machine", "Module",
    "ModuleBuilder", "SecurityPolicy", "Trap", "WaliRuntime", "WaziRuntime",
    "build_app", "compile_source", "decode_module", "encode_module",
    "install_all", "instantiate", "run_wasi_module", "validate_module",
    "with_libc",
]
