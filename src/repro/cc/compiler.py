"""Code generation: mini-C AST → WebAssembly module.

Target conventions:

* All pointers are i32 offsets into linear memory; there is no address-of,
  so scalars live on the Wasm operand stack and aggregates live in
  ``buffer`` declarations or heap allocations (malloc over WALI mmap).
* String literals are interned into the data segment, NUL-terminated.
* ``funcref(name)`` yields a table index (used for signal handlers and
  thread entry points — the WALI process model needs real funcrefs).
* ``__heap_base`` / ``__data_end`` are implicit globals marking the end of
  static data; the guest libc starts its heap there.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..wasm import Module, ModuleBuilder, validate_module
from ..wasm.opt import gc_functions
from ..wasm.builder import FuncBuilder
from ..wasm.types import F64, I32, I64, PAGE_SIZE
from . import ast
from .lexer import CompileError
from .parser import parse

_LOADS = {
    "load8u": ("i32.load8_u", I32), "load8s": ("i32.load8_s", I32),
    "load16u": ("i32.load16_u", I32), "load16s": ("i32.load16_s", I32),
    "load32": ("i32.load", I32), "load64": ("i64.load", I64),
    "loadf64": ("f64.load", F64),
}
_STORES = {
    "store8": ("i32.store8", I32), "store16": ("i32.store16", I32),
    "store32": ("i32.store", I32), "store64": ("i64.store", I64),
    "storef64": ("f64.store", F64),
}
_UNSIGNED_BIN = {"divu": "div_u", "remu": "rem_u", "shru": "shr_u",
                 "rotl": "rotl", "rotr": "rotr"}
_UNSIGNED_CMP = {"ltu": "lt_u", "gtu": "gt_u", "leu": "le_u", "geu": "ge_u"}
_BIT_UN = {"clz": "clz", "ctz": "ctz", "popcnt": "popcnt"}
_F64_UN = {"sqrt": "sqrt", "floor": "floor", "ceil": "ceil",
           "fabs": "abs", "fnearest": "nearest", "ftrunc": "trunc"}

_INT_BIN = {
    "+": "add", "-": "sub", "*": "mul", "/": "div_s", "%": "rem_s",
    "&": "and", "|": "or", "^": "xor", "<<": "shl", ">>": "shr_s",
}
_INT_CMP = {"==": "eq", "!=": "ne", "<": "lt_s", ">": "gt_s",
            "<=": "le_s", ">=": "ge_s"}
_F64_BIN = {"+": "add", "-": "sub", "*": "mul", "/": "div"}
_F64_CMP = {"==": "eq", "!=": "ne", "<": "lt", ">": "gt", "<=": "le",
            ">=": "ge"}


class _FuncCtx:
    def __init__(self, decl: ast.FuncDecl, fb: FuncBuilder):
        self.decl = decl
        self.fb = fb
        self.locals: Dict[str, Tuple[int, str]] = {}
        self.depth = 0
        self.loop_stack: List[Tuple[int, int]] = []  # (break_d, continue_d)


class Compiler:
    def __init__(self, name: str = "app", memory_pages: int = 16,
                 max_pages: int = 4096, data_base: int = 1024):
        self.mb = ModuleBuilder(name)
        self.memory_pages = memory_pages
        self.max_pages = max_pages
        self.data_base = data_base
        self.data_ptr = data_base
        self.data_chunks: List[Tuple[int, bytes]] = []
        self.strings: Dict[bytes, int] = {}
        self.consts: Dict[str, int] = {}
        self.buffers: Dict[str, int] = {}
        self.globals: Dict[str, Tuple[int, str]] = {}
        self.funcs: Dict[str, ast.ExternFunc | ast.FuncDecl] = {}
        self.table_map: Dict[str, int] = {}
        self._heap_base_idx: Optional[int] = None

    # ------------------------------------------------------------------
    # data layout
    # ------------------------------------------------------------------

    def _alloc_data(self, size: int, align: int = 16) -> int:
        addr = (self.data_ptr + align - 1) & ~(align - 1)
        self.data_ptr = addr + size
        return addr

    def intern_string(self, s: str) -> int:
        data = s.encode("utf-8") + b"\x00"
        if data in self.strings:
            return self.strings[data]
        addr = self._alloc_data(len(data), align=1)
        self.data_chunks.append((addr, data))
        self.strings[data] = addr
        return addr

    def table_index(self, name: str, line: int) -> int:
        if name not in self.funcs or isinstance(self.funcs[name],
                                                ast.ExternFunc):
            raise CompileError(f"funcref of unknown function {name!r}", line)
        if name not in self.table_map:
            # slots 0 and 1 stay null: they collide with SIG_DFL/SIG_IGN
            # when a funcref is used as a signal handler token
            self.table_map[name] = len(self.table_map) + 2
        return self.table_map[name]

    # ------------------------------------------------------------------
    # top level
    # ------------------------------------------------------------------

    def compile(self, source: str) -> Module:
        prog = parse(source)

        # pass 1: declarations
        func_decls: List[ast.FuncDecl] = []
        for decl in prog.decls:
            if isinstance(decl, ast.ExternFunc):
                if decl.name in self.funcs:
                    raise CompileError(f"duplicate function {decl.name!r}",
                                       decl.line)
                self.funcs[decl.name] = decl
                self.mb.import_func(
                    decl.module, decl.name,
                    [t for _, t in decl.params],
                    [decl.ret] if decl.ret else [])
            elif isinstance(decl, ast.FuncDecl):
                if decl.name in self.funcs:
                    raise CompileError(f"duplicate function {decl.name!r}",
                                       decl.line)
                self.funcs[decl.name] = decl
                func_decls.append(decl)
            elif isinstance(decl, ast.ConstDecl):
                self.consts[decl.name] = decl.value
            elif isinstance(decl, ast.BufferDecl):
                self.buffers[decl.name] = self._alloc_data(decl.size)
            elif isinstance(decl, ast.GlobalDecl):
                init = decl.init.value
                idx = self.mb.add_global(decl.type, init)
                self.globals[decl.name] = (idx, decl.type)

        self._heap_base_idx = self.mb.add_global(I32, 0, mutable=False)
        self.globals["__heap_base"] = (self._heap_base_idx, I32)
        self.globals["__data_end"] = (self._heap_base_idx, I32)

        # pass 2: function signatures (builder indices), then bodies
        builders: List[Tuple[ast.FuncDecl, FuncBuilder]] = []
        for decl in func_decls:
            fb = self.mb.func(decl.name, [t for _, t in decl.params],
                              [decl.ret] if decl.ret else [],
                              export=decl.export)
            builders.append((decl, fb))
        for decl, fb in builders:
            self._compile_func(decl, fb)

        # finalise data, memory, table
        module = self.mb.build()
        heap_base = (self.data_ptr + 15) & ~15
        module.globals[self._heap_base_idx -
                       module.num_imported_globals].init = \
            ("i32.const", heap_base)
        pages_needed = (heap_base + PAGE_SIZE - 1) // PAGE_SIZE
        self.mb.add_memory(max(self.memory_pages, pages_needed),
                           self.max_pages)
        for addr, data in self.data_chunks:
            self.mb.add_data(addr, data)
        if self.table_map:
            ordered = sorted(self.table_map.items(), key=lambda kv: kv[1])
            self.mb.add_elem(2, [self.mb.func_index(n) for n, _ in ordered])
        else:
            self.mb.add_table(2)
        gc_functions(module)  # static linking: strip unreachable code/imports
        validate_module(module)
        return module

    # ------------------------------------------------------------------
    # functions
    # ------------------------------------------------------------------

    def _compile_func(self, decl: ast.FuncDecl, fb: FuncBuilder) -> None:
        ctx = _FuncCtx(decl, fb)
        for i, (pname, ptype) in enumerate(decl.params):
            if pname in ctx.locals:
                raise CompileError(f"duplicate parameter {pname!r}",
                                   decl.line)
            ctx.locals[pname] = (i, ptype)
        self._stmts(ctx, decl.body)
        if decl.ret:
            # default result for fall-through paths (dead after return)
            const_op = {"i32": "i32.const", "i64": "i64.const",
                        "f64": "f64.const"}[decl.ret]
            fb.op(const_op, 0 if decl.ret != "f64" else 0.0)
        fb.end()

    def _stmts(self, ctx: _FuncCtx, stmts: List[object]) -> None:
        for stmt in stmts:
            self._stmt(ctx, stmt)

    def _stmt(self, ctx: _FuncCtx, stmt) -> None:
        fb = ctx.fb
        if isinstance(stmt, ast.VarDecl):
            t = self._expr(ctx, stmt.init, want=stmt.type)
            self._check(t, stmt.type, stmt.line, "initialiser")
            if stmt.name in ctx.locals:
                # re-declaration in a sibling block: reuse the slot
                # (locals are function-scoped; the type must agree)
                idx, ltype = ctx.locals[stmt.name]
                if ltype != stmt.type:
                    raise CompileError(
                        f"local {stmt.name!r} redeclared with a different "
                        f"type ({ltype} vs {stmt.type})", stmt.line)
            else:
                idx = fb.add_local(stmt.type)
                ctx.locals[stmt.name] = (idx, stmt.type)
            fb.local_set(idx)
            return
        if isinstance(stmt, ast.Assign):
            if stmt.name in ctx.locals:
                idx, ltype = ctx.locals[stmt.name]
                t = self._expr(ctx, stmt.expr, want=ltype)
                self._check(t, ltype, stmt.line, f"assignment to {stmt.name}")
                fb.local_set(idx)
                return
            if stmt.name in self.globals:
                idx, gtype = self.globals[stmt.name]
                t = self._expr(ctx, stmt.expr, want=gtype)
                self._check(t, gtype, stmt.line, f"assignment to {stmt.name}")
                fb.global_set(idx)
                return
            raise CompileError(f"assignment to unknown name {stmt.name!r}",
                               stmt.line)
        if isinstance(stmt, ast.If):
            self._condition(ctx, stmt.cond)
            ctx.depth += 1
            with fb.if_():
                self._stmts(ctx, stmt.then)
                if stmt.els:
                    fb.else_()
                    self._stmts(ctx, stmt.els)
            ctx.depth -= 1
            return
        if isinstance(stmt, ast.While):
            ctx.depth += 1
            with fb.block():
                break_depth = ctx.depth
                ctx.depth += 1
                with fb.loop():
                    continue_depth = ctx.depth
                    ctx.loop_stack.append((break_depth, continue_depth))
                    self._condition(ctx, stmt.cond)
                    fb.op("i32.eqz")
                    fb.br_if(ctx.depth - break_depth)
                    self._stmts(ctx, stmt.body)
                    fb.br(ctx.depth - continue_depth)
                    ctx.loop_stack.pop()
                ctx.depth -= 1
            ctx.depth -= 1
            return
        if isinstance(stmt, ast.Break):
            if not ctx.loop_stack:
                raise CompileError("break outside a loop", stmt.line)
            fb.br(ctx.depth - ctx.loop_stack[-1][0])
            return
        if isinstance(stmt, ast.Continue):
            if not ctx.loop_stack:
                raise CompileError("continue outside a loop", stmt.line)
            fb.br(ctx.depth - ctx.loop_stack[-1][1])
            return
        if isinstance(stmt, ast.Return):
            ret = ctx.decl.ret
            if stmt.expr is not None:
                if ret is None:
                    raise CompileError("return with value in void function",
                                       stmt.line)
                t = self._expr(ctx, stmt.expr, want=ret)
                self._check(t, ret, stmt.line, "return value")
            elif ret is not None:
                raise CompileError("missing return value", stmt.line)
            fb.ret()
            return
        if isinstance(stmt, ast.ExprStmt):
            t = self._expr_or_void(ctx, stmt.expr)
            if t is not None:
                fb.op("drop")
            return
        raise CompileError(f"unknown statement {type(stmt).__name__}")

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------

    def _check(self, found: Optional[str], want: str, line: int,
               what: str) -> None:
        if found != want:
            raise CompileError(
                f"type mismatch in {what}: expected {want}, found {found}",
                line)

    def _condition(self, ctx: _FuncCtx, expr) -> None:
        """Emit expr coerced to an i32 truth value."""
        t = self._expr(ctx, expr)
        if t == I64:
            ctx.fb.op("i64.eqz").op("i32.eqz")
        elif t == F64:
            ctx.fb.f64_const(0.0).op("f64.ne")
        elif t != I32:
            raise CompileError("condition must be numeric")

    def _expr_or_void(self, ctx: _FuncCtx, expr) -> Optional[str]:
        """Like _expr but allows void calls (statement position)."""
        if isinstance(expr, ast.Call):
            return self._call(ctx, expr, allow_void=True)
        return self._expr(ctx, expr)

    def _expr(self, ctx: _FuncCtx, expr, want: Optional[str] = None) -> str:
        fb = ctx.fb
        if isinstance(expr, ast.Num):
            if want == I64:
                fb.i64_const(expr.value)
                return I64
            if want == F64:
                fb.f64_const(float(expr.value))
                return F64
            fb.i32_const(expr.value)
            return I32
        if isinstance(expr, ast.Float):
            fb.f64_const(expr.value)
            return F64
        if isinstance(expr, ast.Str):
            fb.i32_const(self.intern_string(expr.value))
            return I32
        if isinstance(expr, ast.Var):
            name = expr.name
            if name in ctx.locals:
                idx, t = ctx.locals[name]
                fb.local_get(idx)
                return t
            if name in self.globals:
                idx, t = self.globals[name]
                fb.global_get(idx)
                return t
            if name in self.consts:
                if want == I64:
                    fb.i64_const(self.consts[name])
                    return I64
                fb.i32_const(self.consts[name])
                return I32
            if name in self.buffers:
                fb.i32_const(self.buffers[name])
                return I32
            raise CompileError(f"unknown name {name!r}", expr.line)
        if isinstance(expr, ast.Un):
            return self._unary(ctx, expr)
        if isinstance(expr, ast.Bin):
            return self._binary(ctx, expr, want)
        if isinstance(expr, ast.Cast):
            return self._cast(ctx, expr)
        if isinstance(expr, ast.Call):
            t = self._call(ctx, expr, allow_void=False)
            assert t is not None
            return t
        raise CompileError(f"unknown expression {type(expr).__name__}")

    def _unary(self, ctx: _FuncCtx, expr: ast.Un) -> str:
        fb = ctx.fb
        if expr.op == "-":
            if isinstance(expr.operand, (ast.Num, ast.Float)):
                return self._expr(ctx, type(expr.operand)(
                    -expr.operand.value, expr.line))
            t = self._expr(ctx, expr.operand)
            if t == F64:
                fb.op("f64.neg")
                return F64
            prefix = "i64" if t == I64 else "i32"
            const = fb.i64_const if t == I64 else fb.i32_const
            # -x == 0 - x
            tmp = fb.add_local(t)
            fb.local_set(tmp)
            const(0)
            fb.local_get(tmp)
            fb.op(f"{prefix}.sub")
            return t
        if expr.op == "!":
            t = self._expr(ctx, expr.operand)
            if t == I32:
                fb.op("i32.eqz")
            elif t == I64:
                fb.op("i64.eqz")
            else:
                raise CompileError("! on float", expr.line)
            return I32
        raise CompileError(f"unknown unary {expr.op!r}", expr.line)

    def _binary(self, ctx: _FuncCtx, expr: ast.Bin,
                want: Optional[str]) -> str:
        fb = ctx.fb
        op = expr.op
        if op == "&&":
            self._condition(ctx, expr.left)
            ctx.depth += 1
            with fb.if_(I32):
                self._condition(ctx, expr.right)
                fb.else_()
                fb.i32_const(0)
            ctx.depth -= 1
            return I32
        if op == "||":
            self._condition(ctx, expr.left)
            ctx.depth += 1
            with fb.if_(I32):
                fb.i32_const(1)
                fb.else_()
                self._condition(ctx, expr.right)
            ctx.depth -= 1
            return I32
        # literal adaption: compile the non-literal side first when possible
        lt = self._expr(ctx, expr.left, want=want)
        rt = self._expr(ctx, expr.right, want=lt)
        if lt != rt:
            raise CompileError(
                f"operand type mismatch for {op!r}: {lt} vs {rt}", expr.line)
        if lt == F64:
            if op in _F64_BIN:
                fb.op(f"f64.{_F64_BIN[op]}")
                return F64
            if op in _F64_CMP:
                fb.op(f"f64.{_F64_CMP[op]}")
                return I32
            raise CompileError(f"operator {op!r} not valid on f64", expr.line)
        prefix = "i64" if lt == I64 else "i32"
        if op in _INT_BIN:
            fb.op(f"{prefix}.{_INT_BIN[op]}")
            return lt
        if op in _INT_CMP:
            fb.op(f"{prefix}.{_INT_CMP[op]}")
            return I32
        raise CompileError(f"unknown operator {op!r}", expr.line)

    def _cast(self, ctx: _FuncCtx, expr: ast.Cast) -> str:
        fb = ctx.fb
        src = self._expr(ctx, expr.operand,
                         want=expr.target if isinstance(expr.operand,
                                                        ast.Num) else None)
        dst = expr.target
        if src == dst:
            return dst
        table = {
            (I32, I64): "i64.extend_i32_s",
            (I64, I32): "i32.wrap_i64",
            (I32, F64): "f64.convert_i32_s",
            (I64, F64): "f64.convert_i64_s",
            (F64, I32): "i32.trunc_f64_s",
            (F64, I64): "i64.trunc_f64_s",
        }
        fb.op(table[(src, dst)])
        return dst

    # ------------------------------------------------------------------
    # calls & builtins
    # ------------------------------------------------------------------

    def _call(self, ctx: _FuncCtx, expr: ast.Call,
              allow_void: bool) -> Optional[str]:
        fb = ctx.fb
        name = expr.name
        args = expr.args

        # memory builtins
        if name in _LOADS:
            self._expect_args(expr, 1)
            self._check(self._expr(ctx, args[0]), I32, expr.line,
                        f"{name} address")
            opname, t = _LOADS[name]
            fb.op(opname, 0, 0)
            return t
        if name in _STORES:
            self._expect_args(expr, 2)
            opname, t = _STORES[name]
            self._check(self._expr(ctx, args[0]), I32, expr.line,
                        f"{name} address")
            self._check(self._expr(ctx, args[1], want=t), t, expr.line,
                        f"{name} value")
            fb.op(opname, 0, 0)
            return None
        if name == "memsize":
            self._expect_args(expr, 0)
            fb.op("memory.size")
            return I32
        if name == "memgrow":
            self._expect_args(expr, 1)
            self._expr(ctx, args[0])
            fb.op("memory.grow")
            return I32
        if name == "memcopy" or name == "memfill":
            self._expect_args(expr, 3)
            for a in args:
                self._check(self._expr(ctx, a), I32, expr.line, name)
            fb.op(f"memory.{'copy' if name == 'memcopy' else 'fill'}")
            return None
        if name == "unreachable":
            fb.op("unreachable")
            return None
        if name == "atomic_add32":
            self._expect_args(expr, 2)
            for a in args:
                self._check(self._expr(ctx, a), I32, expr.line, name)
            fb.op("i32.atomic.rmw.add", 0, 0)
            return I32
        if name == "atomic_cas32":
            self._expect_args(expr, 3)
            for a in args:
                self._check(self._expr(ctx, a), I32, expr.line, name)
            fb.op("i32.atomic.rmw.cmpxchg", 0, 0)
            return I32

        # typed numeric builtins
        if name in _UNSIGNED_BIN or name in _UNSIGNED_CMP:
            self._expect_args(expr, 2)
            lt = self._expr(ctx, args[0])
            rt = self._expr(ctx, args[1], want=lt)
            self._check(rt, lt, expr.line, name)
            prefix = "i64" if lt == I64 else "i32"
            if name in _UNSIGNED_BIN:
                fb.op(f"{prefix}.{_UNSIGNED_BIN[name]}")
                return lt
            fb.op(f"{prefix}.{_UNSIGNED_CMP[name]}")
            return I32
        if name in _BIT_UN:
            self._expect_args(expr, 1)
            t = self._expr(ctx, args[0])
            prefix = "i64" if t == I64 else "i32"
            fb.op(f"{prefix}.{_BIT_UN[name]}")
            return t
        if name in _F64_UN:
            self._expect_args(expr, 1)
            self._check(self._expr(ctx, args[0]), F64, expr.line, name)
            fb.op(f"f64.{_F64_UN[name]}")
            return F64
        if name == "i64u":  # unsigned extension for pointer-ish values
            self._expect_args(expr, 1)
            self._check(self._expr(ctx, args[0]), I32, expr.line, name)
            fb.op("i64.extend_i32_u")
            return I64

        # funcref / indirect calls
        if name == "funcref":
            if len(args) != 1 or not isinstance(args[0], ast.Var):
                raise CompileError("funcref(name) takes a function name",
                                   expr.line)
            fb.i32_const(self.table_index(args[0].name, expr.line))
            return I32
        if name.startswith("icall_"):
            return self._icall(ctx, expr, allow_void)

        # user / extern functions
        decl = self.funcs.get(name)
        if decl is None:
            raise CompileError(f"call to unknown function {name!r}",
                               expr.line)
        if len(args) != len(decl.params):
            raise CompileError(
                f"{name} expects {len(decl.params)} args, got {len(args)}",
                expr.line)
        for a, (_, ptype) in zip(args, decl.params):
            self._check(self._expr(ctx, a, want=ptype), ptype, expr.line,
                        f"argument to {name}")
        fb.call(name)
        if decl.ret is None:
            if not allow_void:
                raise CompileError(f"void call {name!r} used as a value",
                                   expr.line)
            return None
        return decl.ret

    def _icall(self, ctx: _FuncCtx, expr: ast.Call,
               allow_void: bool) -> Optional[str]:
        # icall_<ret>_<params>(index, args...); letters: v i l f
        fb = ctx.fb
        parts = expr.name.split("_")
        if len(parts) not in (2, 3):
            raise CompileError(f"bad icall name {expr.name!r}", expr.line)
        charmap = {"i": I32, "l": I64, "f": F64}
        ret = None if parts[1] == "v" else charmap.get(parts[1])
        if parts[1] != "v" and ret is None:
            raise CompileError(f"bad icall return {parts[1]!r}", expr.line)
        params = []
        if len(parts) == 3:
            for c in parts[2]:
                if c not in charmap:
                    raise CompileError(f"bad icall param {c!r}", expr.line)
                params.append(charmap[c])
        if len(expr.args) != len(params) + 1:
            raise CompileError(
                f"{expr.name} expects {len(params) + 1} args", expr.line)
        for a, ptype in zip(expr.args[1:], params):
            self._check(self._expr(ctx, a, want=ptype), ptype, expr.line,
                        "icall argument")
        self._check(self._expr(ctx, expr.args[0]), I32, expr.line,
                    "icall index")
        fb.call_indirect(params, [ret] if ret else [])
        if ret is None and not allow_void:
            raise CompileError("void icall used as a value", expr.line)
        return ret

    @staticmethod
    def _expect_args(expr: ast.Call, n: int) -> None:
        if len(expr.args) != n:
            raise CompileError(f"{expr.name} expects {n} args, got "
                               f"{len(expr.args)}", expr.line)


def compile_source(source: str, name: str = "app", memory_pages: int = 16,
                   max_pages: int = 4096, data_base: int = 1024) -> Module:
    """Compile mini-C source to a validated Wasm module."""
    return Compiler(name, memory_pages, max_pages, data_base).compile(source)
