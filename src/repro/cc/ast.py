"""AST node definitions for the mini-C guest language."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

# ---- expressions ----


@dataclass
class Num:
    value: int
    line: int = 0


@dataclass
class Float:
    value: float
    line: int = 0


@dataclass
class Str:
    value: str
    line: int = 0


@dataclass
class Var:
    name: str
    line: int = 0


@dataclass
class Bin:
    op: str
    left: object
    right: object
    line: int = 0


@dataclass
class Un:
    op: str
    operand: object
    line: int = 0


@dataclass
class Call:
    name: str
    args: List[object]
    line: int = 0


@dataclass
class Cast:
    target: str  # "i32" | "i64" | "f64"
    operand: object
    line: int = 0


# ---- statements ----


@dataclass
class VarDecl:
    name: str
    type: str
    init: object
    line: int = 0


@dataclass
class Assign:
    name: str
    expr: object
    line: int = 0


@dataclass
class If:
    cond: object
    then: List[object]
    els: List[object]
    line: int = 0


@dataclass
class While:
    cond: object
    body: List[object]
    line: int = 0


@dataclass
class Break:
    line: int = 0


@dataclass
class Continue:
    line: int = 0


@dataclass
class Return:
    expr: Optional[object]
    line: int = 0


@dataclass
class ExprStmt:
    expr: object
    line: int = 0


# ---- top-level declarations ----


@dataclass
class ExternFunc:
    name: str
    params: List[Tuple[str, str]]
    ret: Optional[str]
    module: str
    line: int = 0


@dataclass
class FuncDecl:
    name: str
    params: List[Tuple[str, str]]
    ret: Optional[str]
    body: List[object]
    export: bool = False
    line: int = 0


@dataclass
class GlobalDecl:
    name: str
    type: str
    init: object
    line: int = 0


@dataclass
class ConstDecl:
    name: str
    value: int
    line: int = 0


@dataclass
class BufferDecl:
    name: str
    size: int
    line: int = 0


@dataclass
class Program:
    decls: List[object] = field(default_factory=list)
