"""Lexer for the mini-C guest language (the repository's ``clang`` analog).

The toolchain role in the paper's ecosystem: applications are written in a
C-like language and compiled against WALI imports.  Tokens carry line/column
for error messages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List


class CompileError(Exception):
    def __init__(self, message: str, line: int = 0, col: int = 0):
        self.line = line
        self.col = col
        super().__init__(f"line {line}:{col}: {message}" if line else message)


KEYWORDS = {
    "func", "extern", "export", "global", "const", "var", "buffer",
    "if", "else", "while", "break", "continue", "return", "from",
    "i32", "i64", "f64",
}

PUNCT = [
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "(", ")", "{", "}", ",", ";", ":", "->", "+", "-", "*", "/", "%",
    "&", "|", "^", "<", ">", "=", "!", "[", "]",
]
PUNCT.sort(key=len, reverse=True)


@dataclass
class Token:
    kind: str   # "ident" | "num" | "float" | "str" | "char" | punct | keyword
    value: object
    line: int
    col: int

    def __repr__(self):
        return f"Token({self.kind!r}, {self.value!r})"


_ESCAPES = {"n": "\n", "t": "\t", "r": "\r", "0": "\0", "\\": "\\",
            '"': '"', "'": "'"}


def tokenize(source: str) -> List[Token]:
    tokens: List[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(source)

    def advance(k: int):
        nonlocal i, line, col
        for _ in range(k):
            if i < n and source[i] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            i += 1

    while i < n:
        c = source[i]
        if c in " \t\r\n":
            advance(1)
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                advance(1)
            continue
        if source.startswith("/*", i):
            start_line = line
            advance(2)
            while i < n and not source.startswith("*/", i):
                advance(1)
            if i >= n:
                raise CompileError("unterminated block comment", start_line)
            advance(2)
            continue
        if c.isdigit() or (c == "." and i + 1 < n and source[i + 1].isdigit()):
            start = i
            tl, tc = line, col
            if source.startswith("0x", i) or source.startswith("0X", i):
                advance(2)
                while i < n and source[i] in "0123456789abcdefABCDEF":
                    advance(1)
                tokens.append(Token("num", int(source[start:i], 16), tl, tc))
                continue
            is_float = False
            while i < n and (source[i].isdigit() or source[i] == "."):
                if source[i] == ".":
                    if is_float:
                        break
                    is_float = True
                advance(1)
            text = source[start:i]
            if is_float:
                tokens.append(Token("float", float(text), tl, tc))
            else:
                tokens.append(Token("num", int(text), tl, tc))
            continue
        if c.isalpha() or c == "_":
            start = i
            tl, tc = line, col
            while i < n and (source[i].isalnum() or source[i] == "_"):
                advance(1)
            word = source[start:i]
            kind = word if word in KEYWORDS else "ident"
            tokens.append(Token(kind, word, tl, tc))
            continue
        if c == '"':
            tl, tc = line, col
            advance(1)
            out = []
            while i < n and source[i] != '"':
                ch = source[i]
                if ch == "\\":
                    advance(1)
                    if i >= n:
                        break
                    esc = source[i]
                    if esc == "x":
                        advance(1)
                        hex_digits = source[i:i + 2]
                        out.append(chr(int(hex_digits, 16)))
                        advance(2)
                        continue
                    out.append(_ESCAPES.get(esc, esc))
                    advance(1)
                    continue
                out.append(ch)
                advance(1)
            if i >= n:
                raise CompileError("unterminated string literal", tl, tc)
            advance(1)
            tokens.append(Token("str", "".join(out), tl, tc))
            continue
        if c == "'":
            tl, tc = line, col
            advance(1)
            if i < n and source[i] == "\\":
                advance(1)
                ch = _ESCAPES.get(source[i], source[i])
            else:
                ch = source[i]
            advance(1)
            if i >= n or source[i] != "'":
                raise CompileError("unterminated char literal", tl, tc)
            advance(1)
            tokens.append(Token("num", ord(ch), tl, tc))
            continue
        for p in PUNCT:
            if source.startswith(p, i):
                tokens.append(Token(p, p, line, col))
                advance(len(p))
                break
        else:
            raise CompileError(f"unexpected character {c!r}", line, col)
    tokens.append(Token("eof", None, line, col))
    return tokens
