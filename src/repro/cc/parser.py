"""Recursive-descent parser for the mini-C guest language.

Grammar sketch::

    program   := decl*
    decl      := extern | funcdecl | globaldecl | constdecl | bufferdecl
    extern    := "extern" "func" IDENT "(" params ")" ["->" type]
                 "from" STR ";"
    funcdecl  := ["export"] "func" IDENT "(" params ")" ["->" type] block
    globaldecl:= "global" IDENT ":" type "=" const_expr ";"
    constdecl := "const" IDENT "=" const_expr ";"
    bufferdecl:= "buffer" IDENT "[" const_expr "]" ";"
    stmt      := vardecl | assign | if | while | break | continue
               | return | exprstmt
    expr      := Pratt with ||, &&, |, ^, &, ==/!=, relational, shifts,
                 additive, multiplicative, unary, call/primary
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from . import ast
from .lexer import CompileError, Token, tokenize

_TYPES = ("i32", "i64", "f64")

# binary operator precedence (higher binds tighter)
_PREC = {
    "||": 1, "&&": 2, "|": 3, "^": 4, "&": 5,
    "==": 6, "!=": 6,
    "<": 7, ">": 7, "<=": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}


class Parser:
    def __init__(self, tokens: List[Token]):
        self.toks = tokens
        self.pos = 0

    # ---- token plumbing ----

    def peek(self, k: int = 0) -> Token:
        return self.toks[min(self.pos + k, len(self.toks) - 1)]

    def next(self) -> Token:
        tok = self.toks[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def expect(self, kind: str) -> Token:
        tok = self.next()
        if tok.kind != kind:
            raise CompileError(f"expected {kind!r}, found {tok.kind!r}",
                               tok.line, tok.col)
        return tok

    def accept(self, kind: str) -> Optional[Token]:
        if self.peek().kind == kind:
            return self.next()
        return None

    def error(self, message: str) -> CompileError:
        tok = self.peek()
        return CompileError(message + f" (at {tok.kind!r})", tok.line,
                            tok.col)

    # ---- program ----

    def parse_program(self) -> ast.Program:
        prog = ast.Program()
        while self.peek().kind != "eof":
            prog.decls.append(self.parse_decl())
        return prog

    def parse_decl(self):
        tok = self.peek()
        if tok.kind == "extern":
            return self.parse_extern()
        if tok.kind == "export" or tok.kind == "func":
            return self.parse_func()
        if tok.kind == "global":
            return self.parse_global()
        if tok.kind == "const":
            return self.parse_const()
        if tok.kind == "buffer":
            return self.parse_buffer()
        raise self.error("expected a declaration")

    def parse_type(self) -> str:
        tok = self.next()
        if tok.kind not in _TYPES:
            raise CompileError(f"expected a type, found {tok.kind!r}",
                               tok.line, tok.col)
        return tok.kind

    def parse_params(self) -> List[Tuple[str, str]]:
        self.expect("(")
        params = []
        while self.peek().kind != ")":
            name = self.expect("ident").value
            self.expect(":")
            params.append((name, self.parse_type()))
            if not self.accept(","):
                break
        self.expect(")")
        return params

    def parse_ret(self) -> Optional[str]:
        if self.accept("->"):
            return self.parse_type()
        return None

    def parse_extern(self) -> ast.ExternFunc:
        tok = self.expect("extern")
        self.expect("func")
        name = self.expect("ident").value
        params = self.parse_params()
        ret = self.parse_ret()
        self.expect("from")
        module = self.expect("str").value
        self.expect(";")
        return ast.ExternFunc(name, params, ret, module, tok.line)

    def parse_func(self) -> ast.FuncDecl:
        export = bool(self.accept("export"))
        tok = self.expect("func")
        name = self.expect("ident").value
        params = self.parse_params()
        ret = self.parse_ret()
        body = self.parse_block()
        return ast.FuncDecl(name, params, ret, body, export, tok.line)

    def parse_const_value(self) -> int:
        neg = bool(self.accept("-"))
        tok = self.next()
        if tok.kind == "num":
            return -tok.value if neg else tok.value
        raise CompileError("expected an integer constant", tok.line, tok.col)

    def parse_global(self) -> ast.GlobalDecl:
        tok = self.expect("global")
        name = self.expect("ident").value
        self.expect(":")
        gtype = self.parse_type()
        self.expect("=")
        if gtype == "f64":
            neg = bool(self.accept("-"))
            vt = self.next()
            if vt.kind not in ("float", "num"):
                raise CompileError("expected a numeric constant",
                                   vt.line, vt.col)
            value = float(vt.value)
            init = ast.Float(-value if neg else value, vt.line)
        else:
            init = ast.Num(self.parse_const_value(), tok.line)
        self.expect(";")
        return ast.GlobalDecl(name, gtype, init, tok.line)

    def parse_const(self) -> ast.ConstDecl:
        tok = self.expect("const")
        name = self.expect("ident").value
        self.expect("=")
        value = self.parse_const_value()
        self.expect(";")
        return ast.ConstDecl(name, value, tok.line)

    def parse_buffer(self) -> ast.BufferDecl:
        tok = self.expect("buffer")
        name = self.expect("ident").value
        self.expect("[")
        size = self.parse_const_value()
        self.expect("]")
        self.expect(";")
        return ast.BufferDecl(name, size, tok.line)

    # ---- statements ----

    def parse_block(self) -> List[object]:
        self.expect("{")
        stmts = []
        while self.peek().kind != "}":
            stmts.append(self.parse_stmt())
        self.expect("}")
        return stmts

    def parse_stmt(self):
        tok = self.peek()
        if tok.kind == "var":
            self.next()
            name = self.expect("ident").value
            self.expect(":")
            vtype = self.parse_type()
            self.expect("=")
            init = self.parse_expr()
            self.expect(";")
            return ast.VarDecl(name, vtype, init, tok.line)
        if tok.kind == "if":
            return self.parse_if()
        if tok.kind == "while":
            self.next()
            self.expect("(")
            cond = self.parse_expr()
            self.expect(")")
            return ast.While(cond, self.parse_block(), tok.line)
        if tok.kind == "break":
            self.next()
            self.expect(";")
            return ast.Break(tok.line)
        if tok.kind == "continue":
            self.next()
            self.expect(";")
            return ast.Continue(tok.line)
        if tok.kind == "return":
            self.next()
            if self.accept(";"):
                return ast.Return(None, tok.line)
            expr = self.parse_expr()
            self.expect(";")
            return ast.Return(expr, tok.line)
        if tok.kind == "ident" and self.peek(1).kind == "=":
            name = self.next().value
            self.next()  # "="
            expr = self.parse_expr()
            self.expect(";")
            return ast.Assign(name, expr, tok.line)
        expr = self.parse_expr()
        self.expect(";")
        return ast.ExprStmt(expr, tok.line)

    def parse_if(self) -> ast.If:
        tok = self.expect("if")
        self.expect("(")
        cond = self.parse_expr()
        self.expect(")")
        then = self.parse_block()
        els: List[object] = []
        if self.accept("else"):
            if self.peek().kind == "if":
                els = [self.parse_if()]
            else:
                els = self.parse_block()
        return ast.If(cond, then, els, tok.line)

    # ---- expressions (precedence climbing) ----

    def parse_expr(self, min_prec: int = 1):
        left = self.parse_unary()
        while True:
            op = self.peek().kind
            prec = _PREC.get(op)
            if prec is None or prec < min_prec:
                return left
            tok = self.next()
            right = self.parse_expr(prec + 1)
            left = ast.Bin(op, left, right, tok.line)

    def parse_unary(self):
        tok = self.peek()
        if tok.kind == "-":
            self.next()
            return ast.Un("-", self.parse_unary(), tok.line)
        if tok.kind == "!":
            self.next()
            return ast.Un("!", self.parse_unary(), tok.line)
        return self.parse_primary()

    def parse_primary(self):
        tok = self.next()
        if tok.kind == "num":
            return ast.Num(tok.value, tok.line)
        if tok.kind == "float":
            return ast.Float(tok.value, tok.line)
        if tok.kind == "str":
            return ast.Str(tok.value, tok.line)
        if tok.kind in _TYPES:  # cast: i64(expr)
            self.expect("(")
            inner = self.parse_expr()
            self.expect(")")
            return ast.Cast(tok.kind, inner, tok.line)
        if tok.kind == "ident":
            if self.peek().kind == "(":
                self.next()
                args = []
                while self.peek().kind != ")":
                    args.append(self.parse_expr())
                    if not self.accept(","):
                        break
                self.expect(")")
                return ast.Call(tok.value, args, tok.line)
            return ast.Var(tok.value, tok.line)
        if tok.kind == "(":
            inner = self.parse_expr()
            self.expect(")")
            return inner
        raise CompileError(f"unexpected token {tok.kind!r} in expression",
                           tok.line, tok.col)


def parse(source: str) -> ast.Program:
    return Parser(tokenize(source)).parse_program()
