"""``repro.cc`` — the mini-C compiler targeting WALI (the clang analog).

Guest software in this repository (libc, applications, WASI adapters) is
written in a small C-like language and compiled to Wasm modules with
:func:`compile_source`.
"""

from .compiler import Compiler, compile_source
from .lexer import CompileError

__all__ = ["CompileError", "Compiler", "compile_source"]
