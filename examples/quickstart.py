#!/usr/bin/env python3
"""Quickstart: compile a guest program and run it on WALI.

Shows the three layers the paper puts together (Fig. 1):
  guest source -> mini-C compiler -> Wasm module -> WALI runtime -> kernel.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import WaliRuntime, compile_source, with_libc

SOURCE = with_libc(r"""
export func _start() {
    __init_args();

    println("hello from a WALI guest!");

    // plain POSIX-style file I/O straight through the kernel interface
    var fd: i32 = open("/tmp/greeting.txt", O_CREAT | O_RDWR, 0x1b4);
    write(fd, "written by wasm\n", 16);
    close(fd);

    // the heap below malloc is mmap over WALI (§3.2)
    var msg: i32 = malloc(64);
    strcpy(msg, "argc=");
    var num: i32 = malloc(16);
    itoa(argc(), num);
    strcat(msg, num);
    println(msg);

    exit(0);
}
""")


def main():
    module = compile_source(SOURCE, name="quickstart")

    print("import section (the guest's statically-declared capabilities):")
    for mod, name in module.import_names():
        print(f"  {mod}.{name}")

    rt = WaliRuntime()
    status = rt.run(module, argv=["quickstart", "one", "two"])

    print(f"\nguest exit status: {status}")
    print(f"guest console output:\n{rt.kernel.console_output().decode()}")
    print(f"file written by the guest: "
          f"{rt.kernel.vfs.read_file('/tmp/greeting.txt')!r}")
    print(f"syscalls executed: {dict(rt.kernel.syscall_counts)}")


if __name__ == "__main__":
    main()
