#!/usr/bin/env python3
"""An epoll-driven multi-client server over WALI.

Runs mini-memcached in its **event-loop mode** (``-e``): one guest thread,
nonblocking sockets, and the kernel's epoll subsystem — ``accept4`` +
``epoll_pwait`` dispatch instead of one cloned LWP per connection.  Then
drives it with 64 concurrent clients and shows that zero worker threads
were created while every client got served.
"""

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import WaliRuntime, build_app
from repro.kernel import AF_INET, Kernel, SOCK_STREAM

NCLIENTS = 64


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--net", default="loopback", metavar="BACKEND[:OPTS]",
                    help="kernel network backend, e.g. loopback or "
                         "wan:latency_ms=5,jitter_ms=1 (default: loopback)")
    ap.add_argument("--pcap", metavar="PATH",
                    help="capture every wire payload to a pcap file")
    args = ap.parse_args()

    rt = WaliRuntime(kernel=Kernel(net_backend=args.net))
    tap = rt.kernel.net.attach_tap() if args.pcap else None
    server = rt.load(build_app("mini_memcached"),
                     argv=["memcached", "11211", "-e"])
    server.start_in_thread()
    for _ in range(500):
        if b"ready" in rt.kernel.console_output():
            break
        time.sleep(0.01)

    k = rt.kernel
    client = k.create_process(["clients"])
    fds = []
    for _ in range(NCLIENTS):
        fd = k.call(client, "socket", AF_INET, SOCK_STREAM)
        k.call(client, "connect", fd, ("127.0.0.1", 11211))
        fds.append(fd)

    def recvline(fd):
        out = b""
        while not out.endswith(b"\n"):
            data, _ = k.call(client, "recvfrom", fd, 256)
            if not data:
                break
            out += data
        return out.decode().strip()

    t0 = time.monotonic()
    # every client's request is in flight before any reply is consumed
    for i, fd in enumerate(fds):
        k.call(client, "sendto", fd, f"set user:{i} score{i * 7}\n".encode())
    stored = sum(recvline(fd) == "STORED" for fd in fds)
    for i, fd in enumerate(fds):
        k.call(client, "sendto", fd, f"get user:{i}\n".encode())
    hits = sum(recvline(fd) == f"VALUE score{i * 7}"
               for i, fd in enumerate(fds))
    elapsed = time.monotonic() - t0

    k.call(client, "sendto", fds[0], b"stats\n")
    stats = recvline(fds[0])
    k.call(client, "sendto", fds[0], b"shutdown\n")
    recvline(fds[0])
    server.join(5)

    counts = k.syscall_counts
    print(f"net backend: {k.net.describe()}")
    print(f"{NCLIENTS} concurrent clients: {stored} stored, {hits} hits "
          f"in {elapsed * 1000:.1f} ms")
    print(f"server stats line: {stats}")
    print(f"worker threads cloned:    {counts.get('clone', 0)}")
    print(f"epoll_pwait dispatches:   {counts.get('epoll_pwait', 0)}")
    print(f"nonblocking accept4:      {counts.get('accept4', 0)}")
    print("\none guest thread multiplexed every connection through the")
    print("kernel's readiness waitqueues — no LWP per client, no rescan.")

    if tap is not None:
        with open(args.pcap, "wb") as f:
            f.write(tap.to_pcap())
        print(f"\npcap: {tap.count()} payloads ({tap.nbytes()} bytes) "
              f"-> {args.pcap}")


if __name__ == "__main__":
    main()
