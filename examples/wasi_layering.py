#!/usr/bin/env python3
"""WASI layered over WALI (Fig. 1 / §4.1, the libuvwasi result).

Builds a WASI application (it imports only ``wasi_snapshot_preview1``
functions) and runs it on a WASI implementation that itself uses *only*
WALI name-bound imports — the decoupling the paper argues makes engines
simpler and high-level APIs portable.  The capability sandbox lives in the
WASI layer; WALI stays descriptive.
"""

import os
import struct
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import ModuleBuilder, WaliRuntime
from repro.wasi import MODULE, run_wasi_module, wasi_over_wali
from repro.wasm import I32


def build_wasi_app():
    """A WASI guest: writes a message, creates a file in its preopen."""
    mb = ModuleBuilder("wasi-app")
    mb.import_func(MODULE, "fd_write", [I32, I32, I32, I32], [I32])
    mb.import_func(MODULE, "path_open",
                   [I32, I32, I32, I32, I32, "i64", "i64", I32, I32], [I32])
    mb.import_func(MODULE, "fd_close", [I32], [I32])
    mb.import_func(MODULE, "proc_exit", [I32], [])
    mb.add_memory(4, 64)
    mb.add_data(256, b"hello via WASI-over-WALI\n")
    mb.add_data(128, struct.pack("<II", 256, 25))  # iovec
    mb.add_data(512, b"out.txt")

    f = mb.func("_start", export=True)
    # fd_write(stdout=1, iovec, 1, nwritten at 1024)
    f.i32_const(1).i32_const(128).i32_const(1).i32_const(1024)
    f.call("fd_write").op("drop")
    # path_open(preopen=3, follow, "out.txt", len, CREAT, rights, rights, 0, fd at 1028)
    f.i32_const(3).i32_const(1).i32_const(512).i32_const(7)
    f.i32_const(1)  # OFLAGS_CREAT
    f.i64_const((1 << 30) - 1).i64_const((1 << 30) - 1)
    f.i32_const(0).i32_const(1028)
    f.call("path_open").op("drop")
    f.i32_const(0).call("proc_exit")
    f.end()
    return mb.build()


def main():
    rt = WaliRuntime()
    rt.kernel.vfs.mkdirs("/sandbox")

    module = build_wasi_app()
    print("the app imports ONLY WASI functions:")
    for mod, name in module.import_names():
        print(f"  {mod}.{name}")

    status = run_wasi_module(module, rt, argv=["wasi-app"],
                             preopens={"/sandbox": "/sandbox"})
    print(f"\nexit status: {status}")
    print(f"console: {rt.kernel.console_output().decode()!r}")
    print(f"file created inside the preopen: "
          f"{rt.kernel.vfs.exists('/sandbox/out.txt')}")
    print("\nkernel syscalls actually executed (all reached through the "
          "WALI layer):")
    print(f"  {dict(rt.kernel.syscall_counts)}")


if __name__ == "__main__":
    main()
