#!/usr/bin/env python3
"""Protecting system daemons with Wasm (§1.1 "Protecting System Software").

Runs the mini-memcached network daemon as a WALI guest — sandboxed,
CFI-protected, with a seccomp-like user-space policy layered on top of the
thin interface (§3.6 "Dynamic Policies") — and drives it with a guest
client over the loopback network.
"""

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import SecurityPolicy, WaliRuntime, build_app
from repro.kernel import Kernel
from repro.wali import implemented_names


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--net", default="loopback", metavar="BACKEND[:OPTS]",
                    help="kernel network backend, e.g. loopback or "
                         "wan:latency_ms=5,loss=0.01 (default: loopback)")
    ap.add_argument("--pcap", metavar="PATH",
                    help="capture every wire payload to a pcap file")
    args = ap.parse_args()
    # allow-list policy: exactly what a KV daemon needs, nothing else
    allowed = {
        "socket", "bind", "listen", "accept", "connect", "sendto",
        "recvfrom", "setsockopt", "shutdown", "read", "write", "close",
        "mmap", "munmap", "futex", "clone", "exit", "exit_group", "getpid",
        "gettid", "getuid", "rt_sigaction", "rt_sigprocmask", "writev",
        "sched_yield",
    }
    policy = SecurityPolicy(allow=allowed)

    rt = WaliRuntime(kernel=Kernel(net_backend=args.net), policy=policy)
    tap = rt.kernel.net.attach_tap() if args.pcap else None
    server = rt.load(build_app("mini_memcached"),
                     argv=["memcached", "11211"])
    server.start_in_thread()
    for _ in range(300):
        if b"ready" in rt.kernel.console_output():
            break
        time.sleep(0.01)

    client = rt.load(build_app("memcached_client"),
                     argv=["client", "11211", "40", "1"])
    status = client.run()
    server.join(5)

    print(f"client exit: {status} (net backend: {rt.kernel.net.describe()})")
    print(rt.kernel.console_output().decode())
    print(f"policy: {len(allowed)} syscalls allowed out of "
          f"{len(implemented_names())} WALI implements")
    print(f"policy violations observed: {policy.denied_calls or 'none'}")
    print("\nthe daemon ran with Wasm CFI + memory sandboxing + an")
    print("allow-list syscall policy — layered *above* the thin interface.")

    if tap is not None:
        with open(args.pcap, "wb") as f:
            f.write(tap.to_pcap())
        print(f"\npcap: {tap.count()} payloads ({tap.nbytes()} bytes) "
              f"-> {args.pcap}")


if __name__ == "__main__":
    main()
