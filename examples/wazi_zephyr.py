#!/usr/bin/env python3
"""WAZI: the thin-kernel-interface recipe applied to Zephyr RTOS (§5.1).

A guest application samples a virtual temperature sensor, blinks an LED,
logs readings to the flash filesystem and prints over the console — the
paper's "Lua on a Nucleo-F767ZI" class of deployment.  Every WAZI handler
is auto-generated from the syscall encoding (the >85%-generated claim; for
Zephyr it is 100%).
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import WaziRuntime, compile_source
from repro.wazi import SYSCALL_ENCODING

APP = r"""
extern func k_uptime_get() -> i64 from "wazi";
extern func k_yield() -> i32 from "wazi";
extern func console_write(buf: i32, len: i32) -> i32 from "wazi";
extern func fs_open(name: i32, flags: i32) -> i32 from "wazi";
extern func fs_write(fd: i32, buf: i32, len: i32) -> i32 from "wazi";
extern func fs_close(fd: i32) -> i32 from "wazi";
extern func device_get_binding(name: i32) -> i32 from "wazi";
extern func gpio_pin_configure(dev: i32, dir: i32) -> i32 from "wazi";
extern func gpio_pin_set(dev: i32, value: i32) -> i32 from "wazi";
extern func sensor_sample_fetch(dev: i32) -> i32 from "wazi";
extern func sensor_channel_get(dev: i32, ch: i32) -> i32 from "wazi";

buffer line[64];
buffer num[16];

func wstrlen(s: i32) -> i32 {
    var n: i32 = 0;
    while (load8u(s + n) != 0) { n = n + 1; }
    return n;
}

func printk(s: i32) { console_write(s, wstrlen(s)); }

func fmt_num(v: i32) -> i32 {
    var p: i32 = num;
    if (v == 0) { store8(p, '0'); store8(p + 1, 0); return num; }
    var n: i32 = 0;
    var t: i32 = v;
    while (t > 0) { n = n + 1; t = t / 10; }
    store8(p + n, 0);
    var i: i32 = n - 1;
    while (v > 0) { store8(p + i, '0' + v % 10); v = v / 10; i = i - 1; }
    return num;
}

export func _start() {
    printk("*** WAZI sensor node ***\n");
    var temp: i32 = device_get_binding("TEMP_0");
    var led: i32 = device_get_binding("GPIO_0");
    gpio_pin_configure(led, 1);
    var log: i32 = fs_open("telemetry.log", 0x10);
    var i: i32 = 0;
    while (i < 8) {
        sensor_sample_fetch(temp);
        var milli: i32 = sensor_channel_get(temp, 0);
        printk("sample ");
        printk(fmt_num(i));
        printk(": ");
        printk(fmt_num(milli));
        printk(" mC\n");
        fs_write(log, fmt_num(milli), wstrlen(num));
        fs_write(log, "\n", 1);
        gpio_pin_set(led, i % 2);
        k_yield();
        i = i + 1;
    }
    fs_close(log);
    printk("telemetry stored to flash\n");
}
"""


def main():
    print(f"WAZI interface: {len(SYSCALL_ENCODING)} syscalls, all "
          "auto-generated from the Zephyr syscall encoding:")
    for name, args, ret in SYSCALL_ENCODING[:6]:
        print(f"  {name}({', '.join(args)}) -> {ret}")
    print("  ...")

    rt = WaziRuntime()
    status = rt.run(compile_source(APP, name="sensor-node"))

    print(f"\nexit status: {status}")
    print("Zephyr console:")
    print(rt.console_output().decode())
    print(f"flash file size: {rt.kernel.fs_size('telemetry.log')} bytes")
    led = rt.kernel.devices["GPIO_0"].obj
    print(f"LED toggles observed by the GPIO driver: {led.toggles}")
    print(f"WAZI syscall counts: {rt.kernel.syscall_counts}")


if __name__ == "__main__":
    main()
