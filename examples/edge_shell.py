#!/usr/bin/env python3
"""Edge-system demo: a full userspace stack on WALI.

Installs the application suite as executable ``.wasm`` binaries (the
paper's binfmt trick, §4.1), then drives the mini shell through a script
that forks, execs, pipes, redirects and handles signals — the syscall
families that make bash impossible on WASI (Table 1).
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import WaliRuntime, build_app, install_all

SCRIPT = b"""# runs inside the mini shell, on WALI
echo === edge system boot ===
pwd
cd /tmp
pwd
echo sensor log entry 1 > readings.txt
echo sensor log entry 2 >> readings.txt
cat readings.txt
cat readings.txt | wc
/bin/echo.wasm binaries are directly executable
exit 0
"""


def main():
    rt = WaliRuntime()
    install_all(rt)  # /bin/*.wasm, runnable via fork+execve

    rt.kernel.vfs.write_file("/tmp/boot.sh", SCRIPT)
    status = rt.run(build_app("mini_sh"), argv=["sh", "/tmp/boot.sh"])

    print(f"shell exit status: {status}")
    print("console:")
    print(rt.kernel.console_output().decode())

    print("processes created (1-to-1 model, §3.1): "
          f"{sum(rt.kernel.syscall_counts[c] for c in ('fork', 'clone'))} "
          "forks/clones")
    print(f"execve calls: {rt.kernel.syscall_counts['execve']}")
    print(f"pipes created: {rt.kernel.syscall_counts['pipe2']}")


if __name__ == "__main__":
    main()
