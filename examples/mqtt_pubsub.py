#!/usr/bin/env python3
"""MQTT pub/sub over WALI, with the observability layer watching.

Runs the mini-MQTT broker as a sandboxed guest, drives it with the
paho-style bench client, and reads the run back through the kernel's
observability surface: ``/proc/net/sockstat`` deliveries, the shared
counter registry, and the per-syscall latency table the always-on log2
histograms feed.  ``--pcap`` additionally captures every wire payload
to a classic pcap file; ``--net wan:...`` shows the impairment
counters (loss/reorder/dup) moving.
"""

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import WaliRuntime, build_app
from repro.kernel import Kernel
from repro.metrics import counter_snapshot, latency_table

MESSAGES = 25
PAYLOAD = 48


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--net", default="loopback", metavar="BACKEND[:OPTS]",
                    help="kernel network backend, e.g. loopback or "
                         "wan:latency_ms=5,loss=0.01 (default: loopback)")
    ap.add_argument("--pcap", metavar="PATH",
                    help="capture every wire payload to a pcap file")
    args = ap.parse_args()

    rt = WaliRuntime(kernel=Kernel(net_backend=args.net))
    tap = rt.kernel.net.attach_tap() if args.pcap else None

    broker = rt.load(build_app("mqtt_broker"), argv=["broker", "11883"])
    broker.start_in_thread()
    for _ in range(500):
        if b"ready" in rt.kernel.console_output():
            break
        time.sleep(0.01)

    status = rt.run(build_app("paho_bench"),
                    argv=["bench", "11883", str(MESSAGES), str(PAYLOAD),
                          "1"])
    broker.join(5)

    k = rt.kernel
    print(f"bench exit: {status} (net backend: {k.net.describe()})")
    print(k.console_output().decode())

    print("== shared counters (/proc-visible, single source of truth) ==")
    for name, value in counter_snapshot(k):
        print(f"  {name}: {value}")

    print("\n== per-syscall latency (always-on log2 histograms) ==")
    print(latency_table(k.trace))

    if tap is not None:
        with open(args.pcap, "wb") as f:
            f.write(tap.to_pcap())
        print(f"\npcap: {tap.count()} payloads ({tap.nbytes()} bytes) "
              f"-> {args.pcap}")


if __name__ == "__main__":
    main()
