"""Test bootstrap: make ``src/`` importable without an installed wheel.

The benchmark environment has no network, so ``pip install -e .`` cannot
fetch the PEP 517 build backend; this path shim is the offline equivalent.

Also home of the ``wan_seed`` fixture: every test that builds a WAN
backend derives its impairment seed from here, so jitter/loss/reorder
decisions are bit-reproducible run-to-run (per-flow RNG streams in
``kernel/net/wan.py``) yet decorrelated across tests.
"""

import os
import sys
import zlib

import pytest

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "src"))


@pytest.fixture
def wan_seed(request):
    """Deterministic per-test WAN impairment seed.

    Derived from the test's node id (stable across runs and workers, no
    wall-clock or hash-randomization input), so a failing impairment
    pattern can always be replayed exactly by re-running the test.
    """
    return zlib.crc32(request.node.nodeid.encode())
