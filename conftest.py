"""Test bootstrap: make ``src/`` importable without an installed wheel.

The benchmark environment has no network, so ``pip install -e .`` cannot
fetch the PEP 517 build backend; this path shim is the offline equivalent.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "src"))
