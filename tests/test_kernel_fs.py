"""Kernel tests: VFS, fd semantics, pipes, procfs, poll."""

import pytest

from repro.kernel import (
    AT_FDCWD, Kernel, KernelError, O_APPEND, O_CLOEXEC, O_CREAT, O_EXCL,
    O_NONBLOCK, O_RDONLY, O_RDWR, O_TRUNC, O_WRONLY,
)
from repro.kernel.errno import (
    EBADF, EEXIST, EINVAL, EISDIR, ELOOP, ENOENT, ENOSPC, ENOTDIR,
    ENOTEMPTY, ESPIPE,
)
from repro.kernel.fdtable import F_DUPFD_CLOEXEC, F_GETFD, F_GETFL, F_SETFL
from repro.kernel.process import RLIMIT_FSIZE


@pytest.fixture
def k():
    return Kernel()


@pytest.fixture
def proc(k):
    return k.create_process(["test"], {})


class TestOpenClose:
    def test_open_missing_enoent(self, k, proc):
        with pytest.raises(KernelError) as ei:
            k.call(proc, "openat", AT_FDCWD, "/nope", O_RDONLY, 0)
        assert ei.value.errno == ENOENT

    def test_create_write_read(self, k, proc):
        fd = k.call(proc, "openat", AT_FDCWD, "/tmp/a", O_CREAT | O_RDWR, 0o644)
        assert k.call(proc, "write", fd, b"abc") == 3
        k.call(proc, "lseek", fd, 0, 0)
        assert k.call(proc, "read", fd, 10) == b"abc"
        assert k.call(proc, "close", fd) == 0

    def test_o_excl(self, k, proc):
        k.call(proc, "openat", AT_FDCWD, "/tmp/b", O_CREAT, 0o644)
        with pytest.raises(KernelError) as ei:
            k.call(proc, "openat", AT_FDCWD, "/tmp/b",
                   O_CREAT | O_EXCL, 0o644)
        assert ei.value.errno == EEXIST

    def test_o_trunc(self, k, proc):
        fd = k.call(proc, "openat", AT_FDCWD, "/tmp/c", O_CREAT | O_RDWR, 0o644)
        k.call(proc, "write", fd, b"0123456789")
        k.call(proc, "close", fd)
        fd = k.call(proc, "openat", AT_FDCWD, "/tmp/c", O_RDWR | O_TRUNC, 0)
        assert k.call(proc, "fstat", fd).st_size == 0

    def test_o_append(self, k, proc):
        k.vfs.write_file("/tmp/d", b"xx")
        fd = k.call(proc, "openat", AT_FDCWD, "/tmp/d", O_WRONLY | O_APPEND, 0)
        k.call(proc, "write", fd, b"yy")
        assert k.vfs.read_file("/tmp/d") == b"xxyy"

    def test_write_on_rdonly_ebadf(self, k, proc):
        k.vfs.write_file("/tmp/e", b"")
        fd = k.call(proc, "openat", AT_FDCWD, "/tmp/e", O_RDONLY, 0)
        with pytest.raises(KernelError) as ei:
            k.call(proc, "write", fd, b"z")
        assert ei.value.errno == EBADF

    def test_open_dir_for_write_eisdir(self, k, proc):
        with pytest.raises(KernelError) as ei:
            k.call(proc, "openat", AT_FDCWD, "/tmp", O_WRONLY, 0)
        assert ei.value.errno == EISDIR

    def test_close_bad_fd(self, k, proc):
        with pytest.raises(KernelError) as ei:
            k.call(proc, "close", 99)
        assert ei.value.errno == EBADF

    def test_umask_applied(self, k, proc):
        k.call(proc, "umask", 0o077)
        fd = k.call(proc, "openat", AT_FDCWD, "/tmp/um", O_CREAT, 0o666)
        assert k.call(proc, "fstat", fd).st_mode & 0o777 == 0o600

    def test_rlimit_fsize_enospc(self, k, proc):
        proc.setrlimit(RLIMIT_FSIZE, 4, 4)
        fd = k.call(proc, "openat", AT_FDCWD, "/tmp/cap", O_CREAT | O_RDWR,
                    0o644)
        with pytest.raises(KernelError) as ei:
            k.call(proc, "write", fd, b"too big for the cap")
        assert ei.value.errno == ENOSPC


class TestSeekAndP:
    def test_lseek_set_cur_end(self, k, proc):
        k.vfs.write_file("/tmp/s", b"0123456789")
        fd = k.call(proc, "openat", AT_FDCWD, "/tmp/s", O_RDONLY, 0)
        assert k.call(proc, "lseek", fd, 4, 0) == 4
        assert k.call(proc, "lseek", fd, 2, 1) == 6
        assert k.call(proc, "lseek", fd, -1, 2) == 9
        assert k.call(proc, "read", fd, 10) == b"9"

    def test_lseek_negative_einval(self, k, proc):
        k.vfs.write_file("/tmp/s2", b"x")
        fd = k.call(proc, "openat", AT_FDCWD, "/tmp/s2", O_RDONLY, 0)
        with pytest.raises(KernelError) as ei:
            k.call(proc, "lseek", fd, -5, 0)
        assert ei.value.errno == EINVAL

    def test_pread_pwrite_do_not_move_offset(self, k, proc):
        fd = k.call(proc, "openat", AT_FDCWD, "/tmp/p", O_CREAT | O_RDWR, 0o644)
        k.call(proc, "pwrite64", fd, b"abcdef", 0)
        assert k.call(proc, "pread64", fd, 3, 2) == b"cde"
        assert k.call(proc, "lseek", fd, 0, 1) == 0  # offset unchanged

    def test_pread_on_pipe_espipe(self, k, proc):
        r, w = k.call(proc, "pipe2", 0)
        with pytest.raises(KernelError) as ei:
            k.call(proc, "pread64", r, 1, 0)
        assert ei.value.errno == ESPIPE

    def test_sparse_write_zero_fills(self, k, proc):
        fd = k.call(proc, "openat", AT_FDCWD, "/tmp/sp", O_CREAT | O_RDWR,
                    0o644)
        k.call(proc, "pwrite64", fd, b"z", 8)
        assert k.vfs.read_file("/tmp/sp") == b"\x00" * 8 + b"z"


class TestDupFcntl:
    def test_dup_shares_offset(self, k, proc):
        k.vfs.write_file("/tmp/f", b"abcdef")
        fd = k.call(proc, "openat", AT_FDCWD, "/tmp/f", O_RDONLY, 0)
        fd2 = k.call(proc, "dup", fd)
        assert k.call(proc, "read", fd, 3) == b"abc"
        assert k.call(proc, "read", fd2, 3) == b"def"  # shared description

    def test_dup2_replaces(self, k, proc):
        k.vfs.write_file("/tmp/g", b"g")
        fd = k.call(proc, "openat", AT_FDCWD, "/tmp/g", O_RDONLY, 0)
        k.call(proc, "dup2", fd, 0)  # replace stdin
        assert k.call(proc, "read", 0, 1) == b"g"

    def test_dup3_equal_fds_einval(self, k, proc):
        with pytest.raises(KernelError) as ei:
            k.call(proc, "dup3", 1, 1, 0)
        assert ei.value.errno == EINVAL

    def test_fcntl_dupfd_cloexec(self, k, proc):
        k.vfs.write_file("/tmp/h", b"")
        fd = k.call(proc, "openat", AT_FDCWD, "/tmp/h", O_RDONLY, 0)
        fd2 = k.call(proc, "fcntl", fd, F_DUPFD_CLOEXEC, 10)
        assert fd2 >= 10
        assert k.call(proc, "fcntl", fd2, F_GETFD) == 1

    def test_fcntl_setfl_nonblock(self, k, proc):
        r, w = k.call(proc, "pipe2", 0)
        k.call(proc, "fcntl", r, F_SETFL, O_NONBLOCK)
        assert k.call(proc, "fcntl", r, F_GETFL) & O_NONBLOCK

    def test_cloexec_closed_on_exec(self, k, proc):
        k.vfs.write_file("/bin/prog", b"#!wasm")
        fd = k.call(proc, "openat", AT_FDCWD, "/tmp/h2",
                    O_CREAT | O_CLOEXEC, 0o644)
        keep = k.call(proc, "openat", AT_FDCWD, "/tmp/h3", O_CREAT, 0o644)
        k.call(proc, "execve", "/bin/prog", ["prog"], [])
        with pytest.raises(KernelError):
            k.call(proc, "read", fd, 1)
        k.call(proc, "fstat", keep)  # survives


class TestPipes:
    def test_roundtrip(self, k, proc):
        r, w = k.call(proc, "pipe2", 0)
        k.call(proc, "write", w, b"ping")
        assert k.call(proc, "read", r, 4) == b"ping"

    def test_eof_after_writer_close(self, k, proc):
        r, w = k.call(proc, "pipe2", 0)
        k.call(proc, "write", w, b"x")
        k.call(proc, "close", w)
        assert k.call(proc, "read", r, 10) == b"x"
        assert k.call(proc, "read", r, 10) == b""  # EOF, not block

    def test_epipe_and_sigpipe(self, k, proc):
        from repro.kernel import SIGPIPE, sig_bit
        r, w = k.call(proc, "pipe2", 0)
        k.call(proc, "close", r)
        with pytest.raises(KernelError) as ei:
            k.call(proc, "write", w, b"x")
        assert ei.value.errno == 32  # EPIPE
        assert proc.pending.bits & sig_bit(SIGPIPE)

    def test_nonblocking_empty_eagain(self, k, proc):
        r, w = k.call(proc, "pipe2", O_NONBLOCK)
        with pytest.raises(KernelError) as ei:
            k.call(proc, "read", r, 1)
        assert ei.value.errno == 11  # EAGAIN

    def test_fionread(self, k, proc):
        r, w = k.call(proc, "pipe2", 0)
        k.call(proc, "write", w, b"12345")
        assert k.call(proc, "ioctl", r, 0x541B) == 5  # FIONREAD


class TestDirectories:
    def test_mkdir_getdents(self, k, proc):
        k.call(proc, "mkdirat", AT_FDCWD, "/tmp/dir", 0o755)
        k.vfs.write_file("/tmp/dir/f1", b"")
        k.vfs.write_file("/tmp/dir/f2", b"")
        fd = k.call(proc, "openat", AT_FDCWD, "/tmp/dir", O_RDONLY, 0)
        names = [e.name for e in k.call(proc, "getdents64", fd)]
        assert names == [".", "..", "f1", "f2"]

    def test_mkdir_exists(self, k, proc):
        with pytest.raises(KernelError) as ei:
            k.call(proc, "mkdirat", AT_FDCWD, "/tmp", 0o755)
        assert ei.value.errno == EEXIST

    def test_rmdir_nonempty(self, k, proc):
        k.vfs.mkdirs("/tmp/ne")
        k.vfs.write_file("/tmp/ne/x", b"")
        with pytest.raises(KernelError) as ei:
            k.call(proc, "unlinkat", AT_FDCWD, "/tmp/ne", 0x200)
        assert ei.value.errno == ENOTEMPTY

    def test_chdir_getcwd(self, k, proc):
        k.vfs.mkdirs("/home/user/work")
        k.call(proc, "chdir", "/home/user/work")
        assert k.call(proc, "getcwd") == "/home/user/work"
        k.call(proc, "chdir", "..")
        assert k.call(proc, "getcwd") == "/home/user"

    def test_chdir_to_file_enotdir(self, k, proc):
        k.vfs.write_file("/tmp/file", b"")
        with pytest.raises(KernelError) as ei:
            k.call(proc, "chdir", "/tmp/file")
        assert ei.value.errno == ENOTDIR

    def test_relative_paths_use_cwd(self, k, proc):
        k.call(proc, "chdir", "/tmp")
        fd = k.call(proc, "openat", AT_FDCWD, "rel.txt", O_CREAT, 0o644)
        assert k.vfs.exists("/tmp/rel.txt")

    def test_rename(self, k, proc):
        k.vfs.write_file("/tmp/old", b"data")
        k.call(proc, "renameat", AT_FDCWD, "/tmp/old", AT_FDCWD, "/tmp/new")
        assert not k.vfs.exists("/tmp/old")
        assert k.vfs.read_file("/tmp/new") == b"data"

    def test_unlink(self, k, proc):
        k.vfs.write_file("/tmp/u", b"")
        k.call(proc, "unlinkat", AT_FDCWD, "/tmp/u", 0)
        assert not k.vfs.exists("/tmp/u")


class TestLinks:
    def test_hard_link_shares_inode(self, k, proc):
        k.vfs.write_file("/tmp/orig", b"abc")
        k.call(proc, "linkat", AT_FDCWD, "/tmp/orig", AT_FDCWD, "/tmp/hl", 0)
        st1 = k.call(proc, "stat", "/tmp/orig")
        st2 = k.call(proc, "stat", "/tmp/hl")
        assert st1.st_ino == st2.st_ino
        assert st1.st_nlink == 2

    def test_symlink_follow_and_nofollow(self, k, proc):
        k.vfs.write_file("/tmp/target", b"T")
        k.call(proc, "symlinkat", "/tmp/target", AT_FDCWD, "/tmp/sl")
        assert k.call(proc, "stat", "/tmp/sl").st_size == 1
        lst = k.call(proc, "lstat", "/tmp/sl")
        assert lst.st_mode & 0o170000 == 0o120000  # S_IFLNK

    def test_readlinkat(self, k, proc):
        k.call(proc, "symlinkat", "/somewhere", AT_FDCWD, "/tmp/sl2")
        assert k.call(proc, "readlinkat", AT_FDCWD, "/tmp/sl2") == "/somewhere"

    def test_symlink_loop_eloop(self, k, proc):
        k.call(proc, "symlinkat", "/tmp/loopb", AT_FDCWD, "/tmp/loopa")
        k.call(proc, "symlinkat", "/tmp/loopa", AT_FDCWD, "/tmp/loopb")
        with pytest.raises(KernelError) as ei:
            k.call(proc, "stat", "/tmp/loopa")
        assert ei.value.errno == ELOOP


class TestProcfsAndDevices:
    def test_dev_null(self, k, proc):
        fd = k.call(proc, "openat", AT_FDCWD, "/dev/null", O_RDWR, 0)
        assert k.call(proc, "write", fd, b"discard") == 7
        assert k.call(proc, "read", fd, 10) == b""

    def test_dev_zero(self, k, proc):
        fd = k.call(proc, "openat", AT_FDCWD, "/dev/zero", O_RDONLY, 0)
        assert k.call(proc, "read", fd, 4) == b"\x00" * 4

    def test_proc_self_resolves_to_caller(self, k, proc):
        fd = k.call(proc, "openat", AT_FDCWD, "/proc/self/status",
                    O_RDONLY, 0)
        content = k.call(proc, "read", fd, 4096).decode()
        assert f"Pid:\t{proc.pid}" in content

    def test_proc_cmdline(self, k):
        proc = k.create_process(["prog", "arg1"], {})
        fd = k.call(proc, "openat", AT_FDCWD, "/proc/self/cmdline",
                    O_RDONLY, 0)
        assert k.call(proc, "read", fd, 100) == b"prog\x00arg1"

    def test_proc_self_mem_exists_at_kernel_level(self, k, proc):
        # The kernel exposes it; WALI is what blocks it (§3.6).
        fd = k.call(proc, "openat", AT_FDCWD, "/proc/self/mem", O_RDONLY, 0)
        assert k.call(proc, "read", fd, 64)

    def test_ioctl_tiocgwinsz(self, k, proc):
        rows, cols = k.call(proc, "ioctl", 0, 0x5413)
        assert (rows, cols) == (24, 80)

    def test_ioctl_on_file_enotty(self, k, proc):
        fd = k.call(proc, "openat", AT_FDCWD, "/tmp/t", O_CREAT, 0o644)
        with pytest.raises(KernelError) as ei:
            k.call(proc, "ioctl", fd, 0x5413)
        assert ei.value.errno == 25  # ENOTTY


class TestPoll:
    def test_poll_ready_pipe(self, k, proc):
        r, w = k.call(proc, "pipe2", 0)
        k.call(proc, "write", w, b"x")
        res = k.call(proc, "ppoll", [(r, 1)], 0)
        assert res == [(r, 1)]

    def test_poll_timeout_empty(self, k, proc):
        r, w = k.call(proc, "pipe2", 0)
        res = k.call(proc, "ppoll", [(r, 1)], 5_000_000)  # 5 ms
        assert res == []

    def test_poll_writable(self, k, proc):
        r, w = k.call(proc, "pipe2", 0)
        res = k.call(proc, "ppoll", [(w, 4)], 0)
        assert res == [(w, 4)]

    def test_poll_bad_fd_pollnval(self, k, proc):
        res = k.call(proc, "ppoll", [(77, 1)], 0)
        assert res == [(77, 0x20)]

    def test_pselect(self, k, proc):
        r, w = k.call(proc, "pipe2", 0)
        k.call(proc, "write", w, b"x")
        rr, ww = k.call(proc, "pselect6", [r], [w], 0)
        assert rr == [r] and ww == [w]


class TestMetadata:
    def test_stat_fields(self, k, proc):
        k.vfs.write_file("/tmp/meta", b"12345")
        st = k.call(proc, "stat", "/tmp/meta")
        assert st.st_size == 5
        assert st.st_mode & 0o170000 == 0o100000
        assert st.st_blksize == 4096

    def test_chmod(self, k, proc):
        k.vfs.write_file("/tmp/cm", b"")
        k.call(proc, "fchmodat", AT_FDCWD, "/tmp/cm", 0o755)
        assert k.call(proc, "stat", "/tmp/cm").st_mode & 0o777 == 0o755

    def test_chown(self, k, proc):
        k.vfs.write_file("/tmp/co", b"")
        k.call(proc, "fchownat", AT_FDCWD, "/tmp/co", 42, 43, 0)
        st = k.call(proc, "stat", "/tmp/co")
        assert (st.st_uid, st.st_gid) == (42, 43)

    def test_truncate_extends_and_shrinks(self, k, proc):
        k.vfs.write_file("/tmp/tr", b"abc")
        k.call(proc, "truncate", "/tmp/tr", 6)
        assert k.vfs.read_file("/tmp/tr") == b"abc\x00\x00\x00"
        k.call(proc, "truncate", "/tmp/tr", 2)
        assert k.vfs.read_file("/tmp/tr") == b"ab"

    def test_statfs(self, k, proc):
        sf = k.call(proc, "statfs", "/tmp")
        assert sf.f_bsize == 4096

    def test_utimensat(self, k, proc):
        k.vfs.write_file("/tmp/ut", b"")
        k.call(proc, "utimensat", AT_FDCWD, "/tmp/ut", 111, 222, 0)
        st = k.call(proc, "stat", "/tmp/ut")
        assert (st.st_atime_ns, st.st_mtime_ns) == (111, 222)

    def test_writev_readv(self, k, proc):
        fd = k.call(proc, "openat", AT_FDCWD, "/tmp/v", O_CREAT | O_RDWR,
                    0o644)
        assert k.call(proc, "writev", fd, [b"ab", b"cd", b"ef"]) == 6
        k.call(proc, "lseek", fd, 0, 0)
        assert k.call(proc, "readv", fd, [2, 4]) == b"abcdef"

    def test_memfd_create(self, k, proc):
        fd = k.call(proc, "memfd_create", "buf", 0)
        k.call(proc, "write", fd, b"anon")
        k.call(proc, "lseek", fd, 0, 0)
        assert k.call(proc, "read", fd, 4) == b"anon"

    def test_sendfile(self, k, proc):
        k.vfs.write_file("/tmp/src", b"payload")
        src = k.call(proc, "openat", AT_FDCWD, "/tmp/src", O_RDONLY, 0)
        dst = k.call(proc, "openat", AT_FDCWD, "/tmp/dst", O_CREAT | O_WRONLY,
                     0o644)
        assert k.call(proc, "sendfile", dst, src, 0, 7) == 7
        assert k.vfs.read_file("/tmp/dst") == b"payload"
