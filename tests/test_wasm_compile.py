"""Compiled-tier tests: semantic equivalence with the interpreter,
including property-based differential testing."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.wasm import (
    I32, I64, F64, ModuleBuilder, Trap, TrapDivByZero, TrapIndirectCall,
    TrapUnreachable, instantiate,
)
from repro.wasm.compile import compile_instance


def both_tiers(module, func="f", imports=None):
    """Return (interp_result_fn, compiled_result_fn)."""
    inst_i = instantiate(module, imports)
    inst_c = instantiate(module, imports)
    ctx = compile_instance(inst_c)

    def interp(*args):
        return inst_i.invoke(func, *args)

    def compiled(*args):
        idx = inst_c.func_index_of(func)
        return ctx.invoke(idx, args)

    return interp, compiled


def test_fib_equivalence():
    mb = ModuleBuilder("t")
    f = mb.func("f", params=[I32], results=[I32], export=True)
    f.local_get(0).i32_const(2).op("i32.lt_s")
    with f.if_(I32):
        f.local_get(0)
        f.else_()
        f.local_get(0).i32_const(1).op("i32.sub").call("f")
        f.local_get(0).i32_const(2).op("i32.sub").call("f")
        f.op("i32.add")
    f.end()
    interp, compiled = both_tiers(mb.build())
    assert interp(15) == compiled(15) == 610


def test_loop_with_breaks():
    mb = ModuleBuilder("t")
    f = mb.func("f", params=[I32], results=[I32], export=True)
    acc = f.add_local(I32)
    with f.block():
        with f.loop():
            f.local_get(0).op("i32.eqz")
            f.br_if(1)
            f.local_get(acc).local_get(0).op("i32.add").local_set(acc)
            f.local_get(0).i32_const(1).op("i32.sub").local_set(0)
            # early exit when acc > 100
            f.local_get(acc).i32_const(100).op("i32.gt_s")
            f.br_if(1)
            f.br(0)
    f.local_get(acc)
    f.end()
    interp, compiled = both_tiers(mb.build())
    for n in (0, 5, 50):
        assert interp(n) == compiled(n)


def test_br_table_equivalence():
    mb = ModuleBuilder("t")
    f = mb.func("f", params=[I32], results=[I32], export=True)
    with f.block():
        with f.block():
            with f.block():
                f.local_get(0)
                f.op("br_table", (0, 1), 2)
            f.i32_const(10)
            f.ret()
        f.i32_const(20)
        f.ret()
    f.i32_const(30)
    f.end()
    interp, compiled = both_tiers(mb.build())
    for n in range(5):
        assert interp(n) == compiled(n)


def test_memory_ops():
    mb = ModuleBuilder("t")
    mb.add_memory(1)
    f = mb.func("f", params=[I32, I32], results=[I32], export=True)
    f.local_get(0).local_get(1).i32_store()
    f.local_get(0).i32_load()
    f.end()
    interp, compiled = both_tiers(mb.build())
    assert interp(64, 0xABCD) == compiled(64, 0xABCD) == 0xABCD


def test_compiled_bounds_check_traps():
    mb = ModuleBuilder("t")
    mb.add_memory(1, 1)
    f = mb.func("f", params=[I32], results=[I32], export=True)
    f.local_get(0).i32_load()
    f.end()
    inst = instantiate(mb.build())
    ctx = compile_instance(inst)
    idx = inst.func_index_of("f")
    with pytest.raises(Trap):
        ctx.invoke(idx, (70000,))


def test_compiled_div_by_zero_traps():
    mb = ModuleBuilder("t")
    f = mb.func("f", params=[I32, I32], results=[I32], export=True)
    f.local_get(0).local_get(1).op("i32.div_u")
    f.end()
    inst = instantiate(mb.build())
    ctx = compile_instance(inst)
    with pytest.raises(TrapDivByZero):
        ctx.invoke(inst.func_index_of("f"), (1, 0))


def test_compiled_indirect_call_check():
    mb = ModuleBuilder("t")
    g = mb.func("g", params=[I32, I32], results=[I32])
    g.local_get(0).local_get(1).op("i32.add")
    g.end()
    mb.add_elem(0, [mb.func_index("g")])
    f = mb.func("f", results=[I32], export=True)
    f.i32_const(1)
    f.i32_const(0)
    f.call_indirect([I32], [I32])  # wrong signature
    f.end()
    inst = instantiate(mb.build())
    ctx = compile_instance(inst)
    with pytest.raises(TrapIndirectCall):
        ctx.invoke(inst.func_index_of("f"), ())


def test_host_calls_from_compiled():
    mb = ModuleBuilder("t")
    mb.import_func("env", "triple", params=[I32], results=[I32])
    f = mb.func("f", params=[I32], results=[I32], export=True)
    f.local_get(0).call("triple")
    f.end()
    imports = {"env": {"triple": lambda x: x * 3}}
    inst = instantiate(mb.build(), imports)
    ctx = compile_instance(inst)
    assert ctx.invoke(inst.func_index_of("f"), (7,)) == 21


def test_compiled_faster_than_interp():
    import time

    mb = ModuleBuilder("t")
    f = mb.func("f", params=[I32], results=[I32], export=True)
    acc = f.add_local(I32)
    with f.block():
        with f.loop():
            f.local_get(0).op("i32.eqz")
            f.br_if(1)
            f.local_get(acc).local_get(0).op("i32.mul")
            f.i32_const(2654435761).op("i32.xor").local_set(acc)
            f.local_get(0).i32_const(1).op("i32.sub").local_set(0)
            f.br(0)
    f.local_get(acc)
    f.end()
    module = mb.build()
    interp, compiled = both_tiers(module)
    n = 30000
    t0 = time.perf_counter()
    r1 = interp(n)
    t_interp = time.perf_counter() - t0
    t0 = time.perf_counter()
    r2 = compiled(n)
    t_compiled = time.perf_counter() - t0
    assert r1 == r2
    assert t_compiled < t_interp  # the AoT tier must actually be faster


_OPS = ["i32.add", "i32.sub", "i32.mul", "i32.and", "i32.or", "i32.xor",
        "i32.shl", "i32.shr_u", "i32.shr_s", "i32.rotl", "i32.rotr",
        "i32.eq", "i32.lt_s", "i32.lt_u", "i32.ge_s"]


@st.composite
def program(draw):
    prog = []
    depth = 0
    for _ in range(draw(st.integers(1, 40))):
        if depth >= 2 and draw(st.booleans()):
            prog.append((draw(st.sampled_from(_OPS)),))
            depth -= 1
        elif depth >= 1 and draw(st.integers(0, 4)) == 0:
            prog.append((draw(st.sampled_from(
                ["i32.clz", "i32.ctz", "i32.popcnt", "i32.eqz",
                 "i32.extend8_s"])),))
        else:
            prog.append(("i32.const", draw(st.integers(0, 2**32 - 1))))
            depth += 1
    while depth > 1:
        prog.append((draw(st.sampled_from(_OPS)),))
        depth -= 1
    return prog


@settings(max_examples=80, deadline=None)
@given(program())
def test_differential_interp_vs_compiled(prog):
    """Property: both tiers compute identical results on random programs."""
    mb = ModuleBuilder("p")
    f = mb.func("f", results=[I32], export=True)
    for instr in prog:
        f.emit(instr)
    f.end()
    module = mb.build()
    interp, compiled = both_tiers(module)
    assert interp() == compiled()


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 2**32 - 1), st.integers(0, 2**32 - 1),
       st.sampled_from(["i32.div_s", "i32.div_u", "i32.rem_s", "i32.rem_u"]))
def test_differential_division(a, b, op):
    mb = ModuleBuilder("p")
    f = mb.func("f", params=[I32, I32], results=[I32], export=True)
    f.local_get(0).local_get(1).op(op)
    f.end()
    interp, compiled = both_tiers(mb.build())
    r1 = e1 = r2 = e2 = None
    try:
        r1 = interp(a, b)
    except Trap as exc:
        e1 = exc.kind
    try:
        r2 = compiled(a, b)
    except Trap as exc:
        e2 = exc.kind
    assert (r1, e1) == (r2, e2)
