"""Property-based tests (hypothesis) over core data structures & invariants:
the mmap pool, VFS path resolution, signal mask algebra, layout codecs,
linear-memory safety, and the function-GC pass."""

from collections import Counter

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.kernel import KernelError
from repro.kernel.mm import (
    AddressSpace, MAP_ANONYMOUS, MAP_FIXED, MAP_PRIVATE, MM_PAGE, PROT_READ,
    PROT_WRITE,
)
from repro.kernel.signals import (
    NSIG, PendingSignals, SIG_BLOCK, SIG_SETMASK, SIG_UNBLOCK, sig_bit,
)
from repro.kernel.vfs import VFS
from repro.wali.layout import Layout
from repro.wasm import LinearMemory, TrapOutOfBounds
from repro.wasm.errors import Trap


# --------------------------------------------------------------------------
# mmap pool / address space invariants
# --------------------------------------------------------------------------

_mm_ops = st.lists(
    st.tuples(
        st.sampled_from(["mmap", "mmap_fixed", "munmap", "mremap",
                         "mprotect"]),
        st.integers(0, 63),   # page index within the arena
        st.integers(1, 16),   # length in pages
    ),
    min_size=1, max_size=40,
)


@settings(max_examples=60, deadline=None)
@given(_mm_ops)
def test_address_space_invariants(ops):
    """After any operation sequence: VMAs never overlap, all stay inside
    the arena, all are page-aligned."""
    base, limit = 0x10000, 0x10000 + 64 * MM_PAGE
    mm = AddressSpace(base, limit)
    mapped = []
    for op, page, length in ops:
        addr = base + page * MM_PAGE
        size = length * MM_PAGE
        try:
            if op == "mmap":
                r = mm.mmap(0, size, PROT_READ | PROT_WRITE,
                            MAP_PRIVATE | MAP_ANONYMOUS)
                mapped.append(r.addr)
            elif op == "mmap_fixed":
                mm.mmap(addr, size, PROT_READ,
                        MAP_PRIVATE | MAP_ANONYMOUS | MAP_FIXED)
            elif op == "munmap":
                mm.munmap(addr, size)
            elif op == "mremap" and mapped:
                old = mapped[-1]
                v = mm.find(old)
                if v is not None and v.start == old:
                    new, _ = mm.mremap(old, v.length, size, 1)
                    mapped[-1] = new
            elif op == "mprotect":
                mm.mprotect(addr, size, PROT_READ)
        except KernelError:
            pass  # ENOMEM/EINVAL are legal outcomes; invariants must hold

        vmas = sorted(mm.vmas, key=lambda v: v.start)
        for v in vmas:
            assert v.start % MM_PAGE == 0 and v.length % MM_PAGE == 0
            assert base <= v.start and v.end <= limit
        for a, b in zip(vmas, vmas[1:]):
            assert a.end <= b.start, "overlapping VMAs"


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(1, 30), min_size=1, max_size=12))
def test_mmap_pool_grows_memory_exactly_enough(sizes):
    from repro.wali.mmap_pool import MmapPool

    mem = LinearMemory(4, 4096)
    pool = MmapPool(mem)
    for pages in sizes:
        r = pool.space.mmap(0, pages * MM_PAGE, PROT_READ | PROT_WRITE,
                            MAP_PRIVATE | MAP_ANONYMOUS)
        # every mapped byte must be backed by linear memory
        assert r.addr + pages * MM_PAGE <= mem.size_bytes
        mem.store_i32(r.addr + pages * MM_PAGE - 4, 1)  # must not trap


# --------------------------------------------------------------------------
# VFS path resolution
# --------------------------------------------------------------------------

_name = st.text(alphabet="abcxyz", min_size=1, max_size=6)
_relpath = st.lists(_name, min_size=1, max_size=4).map("/".join)


@settings(max_examples=50, deadline=None)
@given(st.lists(_relpath, min_size=1, max_size=10))
def test_vfs_create_then_resolve(paths):
    vfs = VFS()
    created = set()
    for p in paths:
        full = "/" + p
        parent = full.rsplit("/", 1)[0]
        if parent:
            try:
                vfs.mkdirs(parent)
            except KernelError:
                continue
        try:
            vfs.write_file(full, p.encode())
            created.add(full)
        except KernelError:
            continue  # a component may already exist as a file
    for full in created:
        node = vfs.lookup(full)
        if node.is_file:
            assert bytes(node.data) == full[1:].encode()


@settings(max_examples=50, deadline=None)
@given(_relpath, st.integers(0, 3))
def test_vfs_dot_and_dotdot_normalisation(path, updowns):
    vfs = VFS()
    vfs.mkdirs("/" + path)
    noisy = "/" + "/".join(
        c + "/." for c in path.split("/"))
    assert vfs.lookup(noisy) is vfs.lookup("/" + path)
    # descending then .. returns to the parent
    comps = path.split("/")
    if len(comps) >= 2:
        wobble = "/" + "/".join(comps[:-1]) + f"/{comps[-1]}/../{comps[-1]}"
        assert vfs.lookup(wobble) is vfs.lookup("/" + path)


# --------------------------------------------------------------------------
# signal algebra
# --------------------------------------------------------------------------

_sigs = st.lists(st.integers(1, NSIG), min_size=0, max_size=20)


@settings(max_examples=60, deadline=None)
@given(_sigs, st.integers(0, 2**NSIG - 1))
def test_pending_take_respects_mask(generated, mask):
    p = PendingSignals()
    for s in generated:
        p.generate(s)
    taken = []
    while True:
        s = p.take(mask)
        if s is None:
            break
        taken.append(s)
    # nothing blocked was delivered; everything unblocked was delivered once
    for s in taken:
        assert not mask & sig_bit(s)
    assert len(taken) == len(set(taken))
    expected = {s for s in generated if not mask & sig_bit(s)}
    assert set(taken) == expected
    # what remains pending is exactly the blocked subset
    assert all(mask & sig_bit(s) for s in p.queue)


@settings(max_examples=60, deadline=None)
@given(st.integers(0, 2**20 - 1), st.integers(0, 2**20 - 1))
def test_sigprocmask_block_unblock_roundtrip(initial, delta):
    from repro.kernel import Kernel

    from repro.kernel import SIGKILL, sig_bit as sb
    from repro.kernel.signals import SIGSTOP

    k = Kernel()
    proc = k.create_process()
    k.call(proc, "rt_sigprocmask", SIG_SETMASK, initial)
    base = proc.blocked_mask  # KILL/STOP stripped
    k.call(proc, "rt_sigprocmask", SIG_BLOCK, delta)
    k.call(proc, "rt_sigprocmask", SIG_UNBLOCK, delta)
    stripped = delta & ~(sb(SIGKILL) | sb(SIGSTOP))
    assert proc.blocked_mask == base & ~stripped


# --------------------------------------------------------------------------
# layout codecs
# --------------------------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(st.integers(0, 2**31 - 1), st.integers(0, 10**18),
       st.sampled_from(["x86_64", "aarch64", "riscv64"]))
def test_stat_conversion_preserves_fields(size, mtime_ns, arch):
    from repro.kernel.calls.fs import Stat

    st_ = Stat(st_ino=5, st_mode=0o100644, st_nlink=1, st_size=size,
               st_mtime_ns=mtime_ns)
    host = Layout(arch)
    guest = Layout("wali")
    converted = guest.decode_stat(
        host.convert_stat(host.encode_stat(st_), guest))
    assert converted.st_size == size
    assert converted.st_mtime_ns == mtime_ns


@settings(max_examples=60, deadline=None)
@given(st.integers(0, 255).map(lambda a: f"{a}.0.0.1"),
       st.integers(0, 65535))
def test_sockaddr_roundtrip(host, port):
    family, addr = Layout.decode_sockaddr(
        Layout.encode_sockaddr((host, port)))
    assert addr == (host, port)


# --------------------------------------------------------------------------
# linear memory safety
# --------------------------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(st.integers(-100, 200000), st.integers(1, 8)),
                max_size=30))
def test_memory_never_reads_outside(accesses):
    mem = LinearMemory(1, 2)  # 64-128 KiB
    for addr, size in accesses:
        in_bounds = 0 <= addr and addr + size <= mem.size_bytes
        if in_bounds:
            mem.load_u(addr, size)
            mem.store_int(addr, 0xAB, size)
        else:
            with pytest.raises(TrapOutOfBounds):
                mem.load_u(addr, size)
            with pytest.raises(TrapOutOfBounds):
                mem.store_int(addr, 0xAB, size)
    assert len(mem.data) == mem.pages * 65536


# --------------------------------------------------------------------------
# function GC correctness
# --------------------------------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(st.integers(0, 2**31 - 1), st.integers(1, 20))
def test_gc_preserves_program_behaviour(seed, nfuncs):
    """Random call graphs compute the same result before and after GC."""
    from repro.wasm import I32, ModuleBuilder, instantiate
    from repro.wasm.opt import gc_functions

    mb = ModuleBuilder("g")
    rng = seed
    names = []
    for i in range(nfuncs):
        f = mb.func(f"fn{i}", params=[I32], results=[I32])
        rng = (rng * 1103515245 + 12345) & 0x7FFFFFFF
        if names and rng % 3 == 0:
            callee = names[rng % len(names)]
            f.local_get(0).i32_const(i + 1).op("i32.add").call(callee)
        else:
            f.local_get(0).i32_const(i + 1).op("i32.xor")
        f.end()
        names.append(f"fn{i}")
    main = mb.func("main", params=[I32], results=[I32], export=True)
    main.local_get(0).call(names[seed % len(names)])
    main.end()
    module = mb.build()

    before = instantiate(module).invoke("main", 77)
    gc_functions(module)
    after = instantiate(module).invoke("main", 77)
    assert before == after
    # GC must not leave more functions than it started with
    assert len(module.funcs) <= nfuncs + 1


# --------------------------------------------------------------------------
# socket stream buffer (kernel/net/base.py) invariants
# --------------------------------------------------------------------------

from repro.kernel.net import SOCK_BUF_CAPACITY, StreamBuffer

_immediate_ops = st.lists(st.one_of(
    st.tuples(st.just("write"), st.binary(min_size=1, max_size=512)),
    st.tuples(st.just("read"), st.integers(1, 512)),
    st.tuples(st.just("eof"), st.none()),
), min_size=1, max_size=120)


@settings(max_examples=80, deadline=None)
@given(_immediate_ops)
def test_stream_buffer_immediate_mode_invariants(ops):
    """Loopback-style delivery: any interleaving of write/read/shutdown
    never loses or reorders bytes and never exceeds the capacity."""
    buf = StreamBuffer(capacity=1024)
    sent = bytearray()
    received = bytearray()
    for op, arg in ops:
        if op == "write":
            window = buf.space()
            n = buf.write(arg)
            assert n == min(len(arg), window)  # accepts exactly the window
            sent += arg[:n]
        elif op == "read":
            received += buf.read(arg)
        else:
            buf.set_eof()
        assert len(buf.data) + buf.in_flight <= buf.capacity
        assert 0 <= buf.space() <= buf.capacity
        assert not (buf.eof is False and op == "eof")  # eof latches
    received += buf.read(len(buf.data))
    assert bytes(received) == bytes(sent)


_delayed_ops = st.lists(st.one_of(
    st.tuples(st.just("xmit"), st.binary(min_size=1, max_size=512)),
    st.tuples(st.just("arrive"), st.none()),
    st.tuples(st.just("read"), st.integers(1, 512)),
    st.tuples(st.just("eof"), st.none()),
), min_size=1, max_size=120)


@settings(max_examples=80, deadline=None)
@given(_delayed_ops)
def test_stream_buffer_delayed_mode_invariants(ops):
    """WAN-style delivery: bytes accepted into the in-flight window and
    landed later (FIFO) are never lost, reordered, or over capacity —
    the in-flight account always reconciles to zero."""
    buf = StreamBuffer(capacity=1024)
    in_flight = []  # the model's view of the delay line
    sent = bytearray()
    received = bytearray()
    for op, arg in ops:
        if op == "xmit":
            chunk = arg[:buf.space()]  # sender clamps to the window
            if chunk:
                buf.in_flight += len(chunk)
                in_flight.append(chunk)
                sent += chunk
        elif op == "arrive" and in_flight:
            chunk = in_flight.pop(0)  # links deliver FIFO
            buf.in_flight -= len(chunk)
            buf.data.extend(chunk)
        elif op == "read":
            received += buf.read(arg)
        elif op == "eof":
            buf.set_eof()
        assert len(buf.data) + buf.in_flight <= buf.capacity
        assert buf.in_flight == sum(len(c) for c in in_flight)
        assert 0 <= buf.space() <= buf.capacity
    while in_flight:  # land the rest of the delay line
        chunk = in_flight.pop(0)
        buf.in_flight -= len(chunk)
        buf.data.extend(chunk)
    received += buf.read(len(buf.data))
    assert buf.in_flight == 0
    assert bytes(received) == bytes(sent)


# --------------------------------------------------------------------------
# scheduler run-queue invariants
# --------------------------------------------------------------------------

_sched_ops = st.lists(
    st.tuples(
        st.sampled_from(["attach", "block", "wake", "yield", "exit",
                         "preempt", "tick"]),
        st.integers(0, 7),     # task index
        st.integers(0, 500),   # clock advance (us)
    ),
    min_size=1, max_size=80,
)


@settings(max_examples=80, deadline=None)
@given(st.integers(1, 3), _sched_ops)
def test_scheduler_partition_and_vruntime_invariants(ncpus, ops):
    """Random block/wake/yield/exit/preempt sequences never lose or
    duplicate a task: the running set, the run queue, and the blocked
    set always partition the live tasks; at most ``ncpus`` tasks run;
    total charged CPU time is monotone non-decreasing (vruntime itself
    is *not* monotone in total: a cross-CPU migration renormalizes the
    task's clock against the destination queue's min_vruntime)."""
    from repro.kernel import Process, Scheduler
    from repro.kernel.sched import (
        SCHED_BLOCKED, SCHED_DEAD, SCHED_RUNNABLE, SCHED_RUNNING,
    )

    clock = [0]
    sched = Scheduler(ncpus=ncpus, slice_us=100,
                      clock=lambda: clock[0])
    procs = [Process(pid, 0) for pid in range(1, 9)]
    last_total_cpu = 0
    for op, idx, advance_us in ops:
        clock[0] += advance_us * 1000
        proc = procs[idx]
        if op == "attach":
            sched.task_attach(proc)
        elif op == "block":
            sched.task_block(proc)
        elif op == "wake":
            sched.task_wake(proc)
        elif op == "yield":
            sched.task_yield(proc)
        elif op == "exit":
            sched.task_exit(proc)
        elif op == "preempt":
            sched.check_preempt(proc)
        elif op == "tick":
            sched.tick()

        live = set(sched.live_pids())
        running = set(sched.running_pids())
        runnable = set(sched.runnable_pids())
        blocked = set(sched.blocked_pids())
        # partition: disjoint, and together exactly the live tasks
        assert running | runnable | blocked == live
        assert not running & runnable
        assert not running & blocked
        assert not runnable & blocked
        assert len(running) <= ncpus
        # states and membership agree; dead tasks own nothing
        for p in procs:
            if p.se.state == SCHED_RUNNING:
                assert p.pid in running
            elif p.se.state == SCHED_RUNNABLE:
                assert p.pid in runnable
            elif p.se.state == SCHED_BLOCKED:
                assert p.pid in blocked
            elif p.se.state == SCHED_DEAD:
                assert p.pid not in live
        # work conservation: a slot never idles while tasks wait
        if runnable:
            assert len(running) == ncpus
        # total charged CPU time (over all tasks ever) is monotone;
        # vruntime may jump down on migration (renormalization) but
        # never below zero
        total_cpu = sum(p.se.cpu_time_ns for p in procs)
        assert total_cpu >= last_total_cpu
        last_total_cpu = total_cpu
        assert all(p.se.vruntime_ns >= 0 for p in procs)
    # a blocked task consumed no slice while blocked: charge only ever
    # happens in the RUNNING state, so cpu_time only grows when granted
    for p in procs:
        assert p.se.cpu_time_ns >= 0
        assert p.se.wait_ns >= 0


# --------------------------------------------------------------------------
# inotify queue-bound invariant
# --------------------------------------------------------------------------

_inotify_ops = st.lists(
    st.one_of(
        # publish an event: (name index, mask choice)
        st.tuples(st.just("pub"), st.integers(0, 5), st.integers(0, 2)),
        # drain some records: (buffer size in whole-record units)
        st.tuples(st.just("read"), st.integers(1, 6), st.just(0)),
    ),
    min_size=1, max_size=120,
)


@settings(max_examples=80, deadline=None)
@given(_inotify_ops, st.integers(1, 8))
def test_inotify_queue_never_exceeds_bound_plus_overflow(ops, bound):
    """After any publish/read interleaving on a bounded inotify queue:
    the queue never holds more than ``max_queued`` content events plus a
    single IN_Q_OVERFLOW marker, records drain in FIFO order, and every
    drained record round-trips through the wire format."""
    from repro.kernel import IN_MODIFY, IN_Q_OVERFLOW, Inotify
    from repro.kernel.inotify import INOTIFY_EVENT_HDR, decode_events

    ino = Inotify(max_queued=bound)

    class _Node:
        is_dir = False
        nlink = 1
        watches = None

    wd = ino.add_watch(_Node(), IN_MODIFY)
    watch = ino.watches[wd]
    published = drained = 0
    for op, a, b in ops:
        if op == "pub":
            ino.publish(watch, IN_MODIFY, name=f"n{a}" * (b + 1))
            published += 1
        else:
            try:
                data = ino.read_step(a * 48)  # fits >=1 padded record
            except KernelError:
                data = b""
            evs = decode_events(data)
            for w, mask, cookie, name in evs:
                assert w in (wd, -1)
                if w == -1:
                    assert mask & IN_Q_OVERFLOW
                else:
                    drained += 1
        # the core bound: content events <= max_queued, plus at most one
        # overflow marker, at every step
        content = [e for e in ino.queue if not e.mask & IN_Q_OVERFLOW]
        markers = [e for e in ino.queue if e.mask & IN_Q_OVERFLOW]
        assert len(content) <= bound
        assert len(markers) <= 1
        assert len(ino.queue) <= bound + 1
        # wire size is always a whole number of aligned records
        for e in ino.queue:
            assert e.size % INOTIFY_EVENT_HDR == 0
    # conservation: a content record only exists because of a publish —
    # drained + still-queued + dropped never exceeds the publish count
    # (tail coalescing may make it strictly smaller)
    content_left = sum(1 for e in ino.queue if not e.mask & IN_Q_OVERFLOW)
    assert drained + content_left + ino.dropped <= published


# --------------------------------------------------------------------------
# trace ring invariants (kernel/trace.py)
# --------------------------------------------------------------------------

_trace_ops = st.lists(
    st.tuples(
        st.sampled_from(["push", "drain"]),
        st.integers(0, 12),      # tracepoint index / drain size factor
        st.integers(0, 2**31),   # arg payload
    ),
    min_size=1, max_size=80,
)


@settings(max_examples=60, deadline=None)
@given(st.integers(1, 12), _trace_ops)
def test_trace_ring_bounded_with_single_marker(capacity, ops):
    """The ring never exceeds capacity + one drop marker, the marker's
    ``arg`` accounts for every swallowed event exactly, and every drain
    returns a whole number of wire records."""
    from repro.kernel.trace import (
        TRACE_RECORD_SIZE, TRACEPOINTS, TraceBuffer, TraceEvent,
        decode_records,
    )

    buf = TraceBuffer(capacity=capacity)
    pushed = drained = marker_drained = 0
    for op, idx, arg in ops:
        if op == "push":
            buf.push(TraceEvent(pushed + 1, idx % len(TRACEPOINTS), 0, 1,
                                arg, "prop"))
            pushed += 1
        else:
            try:
                data = buf.read_step(max(idx, 1) * TRACE_RECORD_SIZE)
            except KernelError:
                data = b""
            assert len(data) % TRACE_RECORD_SIZE == 0
            for rec in decode_records(data):
                if rec.is_drop_marker:
                    marker_drained += rec.arg
                else:
                    drained += 1
        # the core bound, checked at every step
        events = buf.events()
        markers = [e for e in events if e.id == 0xFFFF]
        assert len(events) - len(markers) <= capacity
        assert len(markers) <= 1
        # drop accounting never leaks: queued marker + drained markers
        # cover the dropped count exactly
        queued_marker = markers[0].arg if markers else 0
        assert queued_marker + marker_drained == buf.dropped
    # conservation: every pushed event is drained, still queued, or
    # accounted by a drop marker
    left = sum(1 for e in buf.events() if e.id != 0xFFFF)
    assert drained + left + buf.dropped == pushed


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(
    st.integers(0, 12),                      # tracepoint id
    st.integers(0, 2**31 - 1),               # pid
    st.integers(-2**62, 2**62),              # arg
    st.text(st.characters(min_codepoint=32, max_codepoint=126),
            max_size=16),                    # info label
), min_size=1, max_size=30))
def test_trace_records_roundtrip_wire_format(events):
    """encode -> decode is lossless for id/pid/arg and preserves info up
    to the 16-byte field width."""
    from repro.kernel.trace import (
        TRACEPOINTS, TraceEvent, decode_records,
    )

    blob = b"".join(
        TraceEvent(1000 + i, id_ % len(TRACEPOINTS), 0, pid, arg,
                   info).encode()
        for i, (id_, pid, arg, info) in enumerate(events))
    recs = decode_records(blob)
    assert len(recs) == len(events)
    for rec, (id_, pid, arg, info) in zip(recs, events):
        assert rec.point == TRACEPOINTS[id_ % len(TRACEPOINTS)]
        assert rec.pid == pid and rec.arg == arg
        assert rec.info == info.encode()[:16].decode(
            errors="replace").split("\x00", 1)[0]
