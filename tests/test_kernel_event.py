"""Event subsystem tests: readiness waitqueues, nonblocking socket
semantics, epoll (level/edge/oneshot), eventfd, timerfd, signalfd, and
the waitqueue-driven ppoll/pselect6 rewrite (POLLHUP/POLLERR for closed
peers, prompt wakeups without timeout-sliced rescans)."""

import threading
import time

import pytest

from repro.kernel import (
    AF_INET, EPOLL_CTL_ADD, EPOLL_CTL_DEL, EPOLL_CTL_MOD, EPOLLERR,
    EPOLLET, EPOLLHUP, EPOLLIN, EPOLLONESHOT, EPOLLOUT, Kernel,
    KernelError, O_CREAT, O_NONBLOCK, O_RDWR, SFD_NONBLOCK,
    SIGNALFD_SIGINFO_SIZE, SIGKILL, SIGTERM, SIGUSR1, SIGUSR2, SOCK_STREAM,
    decode_siginfo, sig_bit,
)
from repro.kernel.errno import (
    EAGAIN, EBADF, EEXIST, EINVAL, ELOOP, ENOENT, EPERM,
)
from repro.kernel.sockets import SOCK_BUF_CAPACITY, SOCK_NONBLOCK

POLLIN, POLLOUT, POLLERR, POLLHUP, POLLNVAL = 1, 4, 8, 0x10, 0x20


@pytest.fixture
def kern():
    return Kernel()


@pytest.fixture
def proc(kern):
    return kern.create_process(["test"])


def _stream_pair(kern, proc):
    return kern.call(proc, "socketpair", AF_INET, SOCK_STREAM)


def _listener(kern, proc, port=9001):
    fd = kern.call(proc, "socket", AF_INET, SOCK_STREAM)
    kern.call(proc, "bind", fd, ("127.0.0.1", port))
    kern.call(proc, "listen", fd, 16)
    return fd


class TestNonblockingSockets:
    def test_eagain_on_empty_recv(self, kern, proc):
        a, b = _stream_pair(kern, proc)
        kern.call(proc, "fcntl", a, 4, O_NONBLOCK)  # F_SETFL
        with pytest.raises(KernelError) as exc:
            kern.call(proc, "recvfrom", a, 64)
        assert exc.value.errno == EAGAIN

    def test_eagain_on_full_send(self, kern, proc):
        a, b = _stream_pair(kern, proc)
        kern.call(proc, "fcntl", a, 4, O_NONBLOCK)
        # fill b's receive buffer to capacity
        sent = 0
        chunk = b"x" * 65536
        while sent < SOCK_BUF_CAPACITY:
            sent += kern.call(proc, "sendto", a, chunk[:SOCK_BUF_CAPACITY - sent])
        with pytest.raises(KernelError) as exc:
            kern.call(proc, "sendto", a, b"overflow")
        assert exc.value.errno == EAGAIN

    def test_accept4_nonblock_flag_and_empty_backlog(self, kern, proc):
        lfd = _listener(kern, proc)
        lfile = proc.fdtable.get(lfd)
        lfile.flags |= O_NONBLOCK
        with pytest.raises(KernelError) as exc:
            kern.call(proc, "accept4", lfd, SOCK_NONBLOCK)
        assert exc.value.errno == EAGAIN
        cfd = kern.call(proc, "socket", AF_INET, SOCK_STREAM)
        kern.call(proc, "connect", cfd, ("127.0.0.1", 9001))
        conn = kern.call(proc, "accept4", lfd, SOCK_NONBLOCK)
        assert proc.fdtable.get(conn).nonblocking
        # and the accepted socket really is nonblocking for reads
        with pytest.raises(KernelError) as exc:
            kern.call(proc, "recvfrom", conn, 16)
        assert exc.value.errno == EAGAIN


class TestEpollBasics:
    def test_level_triggered_reports_until_drained(self, kern, proc):
        a, b = _stream_pair(kern, proc)
        ep = kern.call(proc, "epoll_create1", 0)
        kern.call(proc, "epoll_ctl", ep, EPOLL_CTL_ADD, a, EPOLLIN)
        assert kern.call(proc, "epoll_pwait", ep, 8,
                         timeout_ns=5_000_000) == []
        kern.call(proc, "sendto", b, b"data")
        ready = kern.call(proc, "epoll_pwait", ep, 8,
                          timeout_ns=1_000_000_000)
        assert ready == [(a, EPOLLIN)]
        # level-triggered: unread data keeps reporting
        ready = kern.call(proc, "epoll_pwait", ep, 8,
                          timeout_ns=1_000_000_000)
        assert ready == [(a, EPOLLIN)]
        kern.call(proc, "recvfrom", a, 64)
        assert kern.call(proc, "epoll_pwait", ep, 8,
                         timeout_ns=5_000_000) == []

    def test_edge_triggered_reports_once_per_edge(self, kern, proc):
        a, b = _stream_pair(kern, proc)
        ep = kern.call(proc, "epoll_create1", 0)
        kern.call(proc, "epoll_ctl", ep, EPOLL_CTL_ADD, a,
                  EPOLLIN | EPOLLET)
        kern.call(proc, "sendto", b, b"edge1")
        assert kern.call(proc, "epoll_pwait", ep, 8,
                         timeout_ns=1_000_000_000) == [(a, EPOLLIN)]
        # data still buffered, but no new edge: silent
        assert kern.call(proc, "epoll_pwait", ep, 8,
                         timeout_ns=5_000_000) == []
        # a new write is a new edge
        kern.call(proc, "sendto", b, b"edge2")
        assert kern.call(proc, "epoll_pwait", ep, 8,
                         timeout_ns=1_000_000_000) == [(a, EPOLLIN)]

    def test_oneshot_disables_until_rearmed(self, kern, proc):
        a, b = _stream_pair(kern, proc)
        ep = kern.call(proc, "epoll_create1", 0)
        kern.call(proc, "epoll_ctl", ep, EPOLL_CTL_ADD, a,
                  EPOLLIN | EPOLLONESHOT)
        kern.call(proc, "sendto", b, b"one")
        assert kern.call(proc, "epoll_pwait", ep, 8,
                         timeout_ns=1_000_000_000) == \
            [(a, EPOLLIN)]
        # disabled after delivery: even new data stays silent
        kern.call(proc, "sendto", b, b"two")
        assert kern.call(proc, "epoll_pwait", ep, 8,
                         timeout_ns=5_000_000) == []
        # EPOLL_CTL_MOD re-arms
        kern.call(proc, "epoll_ctl", ep, EPOLL_CTL_MOD, a,
                  EPOLLIN | EPOLLONESHOT)
        assert kern.call(proc, "epoll_pwait", ep, 8,
                         timeout_ns=1_000_000_000) == [(a, EPOLLIN)]

    def test_epoll_event_data_passthrough(self, kern, proc):
        a, b = _stream_pair(kern, proc)
        ep = kern.call(proc, "epoll_create1", 0)
        kern.call(proc, "epoll_ctl", ep, EPOLL_CTL_ADD, a, EPOLLIN,
                  data=0xDEADBEEF)
        kern.call(proc, "sendto", b, b"x")
        assert kern.call(proc, "epoll_pwait", ep, 8,
                         timeout_ns=1_000_000_000) == \
            [(0xDEADBEEF, EPOLLIN)]

    def test_hup_delivered_even_if_unrequested(self, kern, proc):
        a, b = _stream_pair(kern, proc)
        ep = kern.call(proc, "epoll_create1", 0)
        kern.call(proc, "epoll_ctl", ep, EPOLL_CTL_ADD, a, EPOLLOUT)
        # writable immediately
        assert kern.call(proc, "epoll_pwait", ep, 8,
                         timeout_ns=1_000_000_000) == [(a, EPOLLOUT)]
        kern.call(proc, "close", b)
        ready = dict(kern.call(proc, "epoll_pwait", ep, 8,
                               timeout_ns=1_000_000_000))
        assert ready[a] & EPOLLHUP

    def test_ctl_error_cases(self, kern, proc):
        a, b = _stream_pair(kern, proc)
        ep = kern.call(proc, "epoll_create1", 0)
        kern.call(proc, "epoll_ctl", ep, EPOLL_CTL_ADD, a, EPOLLIN)
        with pytest.raises(KernelError) as exc:
            kern.call(proc, "epoll_ctl", ep, EPOLL_CTL_ADD, a, EPOLLIN)
        assert exc.value.errno == EEXIST
        with pytest.raises(KernelError) as exc:
            kern.call(proc, "epoll_ctl", ep, EPOLL_CTL_MOD, b, EPOLLIN)
        assert exc.value.errno == ENOENT
        with pytest.raises(KernelError) as exc:
            kern.call(proc, "epoll_ctl", ep, EPOLL_CTL_ADD, ep, EPOLLIN)
        assert exc.value.errno == ELOOP
        with pytest.raises(KernelError) as exc:
            kern.call(proc, "epoll_ctl", ep, EPOLL_CTL_ADD, 999, EPOLLIN)
        assert exc.value.errno == EBADF
        reg = kern.call(proc, "open", "/tmp/reg", O_CREAT | O_RDWR)
        with pytest.raises(KernelError) as exc:
            kern.call(proc, "epoll_ctl", ep, EPOLL_CTL_ADD, reg, EPOLLIN)
        assert exc.value.errno == EPERM
        kern.call(proc, "epoll_ctl", ep, EPOLL_CTL_DEL, a)
        with pytest.raises(KernelError) as exc:
            kern.call(proc, "epoll_ctl", ep, EPOLL_CTL_DEL, a)
        assert exc.value.errno == ENOENT

    def test_close_auto_detaches_from_interest_list(self, kern, proc):
        """Linux auto-removes closed fds from epoll: no phantom events,
        and the reused fd number can be registered again."""
        a, b = _stream_pair(kern, proc)
        ep = kern.call(proc, "epoll_create1", 0)
        kern.call(proc, "epoll_ctl", ep, EPOLL_CTL_ADD, a, EPOLLIN)
        kern.call(proc, "sendto", b, b"x")
        assert kern.call(proc, "epoll_pwait", ep, 8,
                         timeout_ns=1_000_000_000) == [(a, EPOLLIN)]
        kern.call(proc, "close", a)
        # no phantom events for the dead socket
        assert kern.call(proc, "epoll_pwait", ep, 8,
                         timeout_ns=5_000_000) == []
        # the reused fd number registers cleanly (no EEXIST from staleness)
        c, d = _stream_pair(kern, proc)
        assert c == a  # lowest-free allocation reuses the slot
        kern.call(proc, "epoll_ctl", ep, EPOLL_CTL_ADD, c, EPOLLIN)
        kern.call(proc, "sendto", d, b"fresh")
        assert kern.call(proc, "epoll_pwait", ep, 8,
                         timeout_ns=1_000_000_000) == [(c, EPOLLIN)]

    def test_concurrent_add_wakes_blocked_waiter(self, kern, proc):
        """A ready fd added while another thread waits must wake it
        promptly, not after the safety slice."""
        a, b = _stream_pair(kern, proc)
        kern.call(proc, "sendto", b, b"already-ready")
        ep = kern.call(proc, "epoll_create1", 0)

        def adder():
            time.sleep(0.05)
            kern.call(proc, "epoll_ctl", ep, EPOLL_CTL_ADD, a, EPOLLIN)

        t = threading.Thread(target=adder)
        t.start()
        t0 = time.monotonic()
        ready = kern.call(proc, "epoll_pwait", ep, 8,
                          timeout_ns=5_000_000_000)
        elapsed = time.monotonic() - t0
        t.join()
        assert ready == [(a, EPOLLIN)]
        assert elapsed < 0.1  # ~0.05s adder delay, not slice-quantized

    def test_prompt_cross_thread_wakeup(self, kern, proc):
        """epoll_pwait must wake on the event, not on a timeout slice."""
        a, b = _stream_pair(kern, proc)
        ep = kern.call(proc, "epoll_create1", 0)
        kern.call(proc, "epoll_ctl", ep, EPOLL_CTL_ADD, a, EPOLLIN)

        def writer():
            time.sleep(0.05)
            kern.call(proc, "sendto", b, b"wake")

        t = threading.Thread(target=writer)
        t.start()
        t0 = time.monotonic()
        ready = kern.call(proc, "epoll_pwait", ep, 8,
                          timeout_ns=5_000_000_000)
        elapsed = time.monotonic() - t0
        t.join()
        assert ready == [(a, EPOLLIN)]
        assert elapsed < 1.0  # woke on the event, not the 5 s timeout


class TestEventFD:
    def test_counter_semantics(self, kern, proc):
        fd = kern.call(proc, "eventfd2", 3, 0)
        assert kern.call(proc, "read", fd, 8) == (3).to_bytes(8, "little")
        kern.call(proc, "write", fd, (7).to_bytes(8, "little"))
        kern.call(proc, "write", fd, (1).to_bytes(8, "little"))
        assert kern.call(proc, "read", fd, 8) == (8).to_bytes(8, "little")

    def test_nonblock_read_on_zero(self, kern, proc):
        fd = kern.call(proc, "eventfd2", 0, 0o4000)  # EFD_NONBLOCK
        with pytest.raises(KernelError) as exc:
            kern.call(proc, "read", fd, 8)
        assert exc.value.errno == EAGAIN

    def test_semaphore_mode(self, kern, proc):
        fd = kern.call(proc, "eventfd2", 2, 1)  # EFD_SEMAPHORE
        assert kern.call(proc, "read", fd, 8) == (1).to_bytes(8, "little")
        assert kern.call(proc, "read", fd, 8) == (1).to_bytes(8, "little")

    def test_epoll_readiness(self, kern, proc):
        fd = kern.call(proc, "eventfd2", 0, 0)
        ep = kern.call(proc, "epoll_create1", 0)
        kern.call(proc, "epoll_ctl", ep, EPOLL_CTL_ADD, fd, EPOLLIN)
        assert kern.call(proc, "epoll_pwait", ep, 8,
                         timeout_ns=5_000_000) == []
        kern.call(proc, "write", fd, (1).to_bytes(8, "little"))
        ready = kern.call(proc, "epoll_pwait", ep, 8,
                          timeout_ns=1_000_000_000)
        assert ready == [(fd, EPOLLIN)]


class TestTimerFD:
    def test_oneshot_fires_and_reads(self, kern, proc):
        fd = kern.call(proc, "timerfd_create", 1, 0)
        kern.call(proc, "timerfd_settime", fd, 0, 20_000_000)
        ep = kern.call(proc, "epoll_create1", 0)
        kern.call(proc, "epoll_ctl", ep, EPOLL_CTL_ADD, fd, EPOLLIN)
        ready = kern.call(proc, "epoll_pwait", ep, 8,
                          timeout_ns=2_000_000_000)
        assert ready == [(fd, EPOLLIN)]
        assert kern.call(proc, "read", fd, 8) == (1).to_bytes(8, "little")
        # drained: not readable again (one-shot timer)
        assert kern.call(proc, "epoll_pwait", ep, 8,
                         timeout_ns=5_000_000) == []

    def test_interval_accumulates_expirations(self, kern, proc):
        fd = kern.call(proc, "timerfd_create", 1, 0)
        kern.call(proc, "timerfd_settime", fd, 0, 10_000_000, 10_000_000)
        time.sleep(0.12)
        n = int.from_bytes(kern.call(proc, "read", fd, 8), "little")
        assert n >= 2  # several ticks elapsed unread
        kern.call(proc, "timerfd_settime", fd, 0, 0)  # disarm

    def test_gettime_and_disarm(self, kern, proc):
        fd = kern.call(proc, "timerfd_create", 1, 0)
        kern.call(proc, "timerfd_settime", fd, 0, 1_000_000_000)
        value, interval = kern.call(proc, "timerfd_gettime", fd)
        assert 0 < value <= 1_000_000_000
        old = kern.call(proc, "timerfd_settime", fd, 0, 0)
        assert old[0] > 0
        assert kern.call(proc, "timerfd_gettime", fd) == (0, 0)

    def test_abstime_in_the_past_expires_immediately(self, kern, proc):
        fd = kern.call(proc, "timerfd_create", 1, 0)
        now = time.monotonic_ns()
        # TFD_TIMER_ABSTIME with an already-elapsed deadline
        kern.call(proc, "timerfd_settime", fd, 1, now - 1_000_000)
        assert kern.call(proc, "read", fd, 8) == (1).to_bytes(8, "little")

    def test_nonblock_read_before_expiry(self, kern, proc):
        fd = kern.call(proc, "timerfd_create", 1, 0o4000)  # TFD_NONBLOCK
        kern.call(proc, "timerfd_settime", fd, 0, 10_000_000_000)
        with pytest.raises(KernelError) as exc:
            kern.call(proc, "read", fd, 8)
        assert exc.value.errno == EAGAIN

    def test_bad_clock_rejected(self, kern, proc):
        with pytest.raises(KernelError) as exc:
            kern.call(proc, "timerfd_create", 99, 0)
        assert exc.value.errno == EINVAL


class TestSignalFD:
    """signalfd4: pending signals drain as siginfo records, and arrival
    is a readiness edge like any other waitqueue source."""

    def _sfd(self, kern, proc, *sigs, flags=SFD_NONBLOCK):
        mask = 0
        for sig in sigs:
            mask |= sig_bit(sig)
        proc.blocked_mask |= mask  # standard usage: block what the fd owns
        return kern.call(proc, "signalfd4", -1, mask, flags)

    def test_drains_siginfo_with_sender_identity(self, kern, proc):
        sfd = self._sfd(kern, proc, SIGUSR1)
        sender = kern.create_process(["sender"])
        kern.call(sender, "kill", proc.pid, SIGUSR1)
        data = kern.call(proc, "read", sfd, SIGNALFD_SIGINFO_SIZE)
        assert len(data) == SIGNALFD_SIGINFO_SIZE
        signo, code, pid, uid = decode_siginfo(data)
        assert (signo, pid, uid) == (SIGUSR1, sender.pid, sender.euid)

    def test_read_empty_is_eagain(self, kern, proc):
        sfd = self._sfd(kern, proc, SIGUSR1)
        with pytest.raises(KernelError) as exc:
            kern.call(proc, "read", sfd, SIGNALFD_SIGINFO_SIZE)
        assert exc.value.errno == EAGAIN

    def test_short_buffer_is_einval(self, kern, proc):
        sfd = self._sfd(kern, proc, SIGUSR1)
        with pytest.raises(KernelError) as exc:
            kern.call(proc, "read", sfd, 64)
        assert exc.value.errno == EINVAL

    def test_mask_filters_out_of_mask_signals(self, kern, proc):
        sfd = self._sfd(kern, proc, SIGUSR1)
        proc.blocked_mask |= sig_bit(SIGUSR2)
        proc.generate_signal(SIGUSR2)
        # USR2 pends but is outside the fd's mask
        with pytest.raises(KernelError) as exc:
            kern.call(proc, "read", sfd, SIGNALFD_SIGINFO_SIZE)
        assert exc.value.errno == EAGAIN
        assert proc.pending.bits & sig_bit(SIGUSR2)

    def test_batch_read_drains_multiple_records(self, kern, proc):
        sfd = self._sfd(kern, proc, SIGUSR1, SIGTERM)
        proc.generate_signal(SIGUSR1)
        proc.generate_signal(SIGTERM)
        data = kern.call(proc, "read", sfd, 4 * SIGNALFD_SIGINFO_SIZE)
        assert len(data) == 2 * SIGNALFD_SIGINFO_SIZE
        signos = [decode_siginfo(data[i:i + SIGNALFD_SIGINFO_SIZE])[0]
                  for i in (0, SIGNALFD_SIGINFO_SIZE)]
        assert signos == [SIGUSR1, SIGTERM]

    def test_sigkill_silently_dropped_from_mask(self, kern, proc):
        sfd = kern.call(proc, "signalfd4", -1,
                        sig_bit(SIGKILL) | sig_bit(SIGUSR1), SFD_NONBLOCK)
        assert proc.fdtable.get(sfd).obj.mask == sig_bit(SIGUSR1)

    def test_update_mask_in_place(self, kern, proc):
        sfd = self._sfd(kern, proc, SIGUSR1)
        proc.blocked_mask |= sig_bit(SIGUSR2)
        assert kern.call(proc, "signalfd4", sfd, sig_bit(SIGUSR2)) == sfd
        proc.generate_signal(SIGUSR2)
        signo = decode_siginfo(
            kern.call(proc, "read", sfd, SIGNALFD_SIGINFO_SIZE))[0]
        assert signo == SIGUSR2
        # updating a non-signalfd fd is EINVAL
        efd = kern.call(proc, "eventfd2", 0, 0)
        with pytest.raises(KernelError) as exc:
            kern.call(proc, "signalfd4", efd, sig_bit(SIGUSR1))
        assert exc.value.errno == EINVAL

    def test_epoll_readiness_on_signal_arrival(self, kern, proc):
        sfd = self._sfd(kern, proc, SIGUSR1)
        ep = kern.call(proc, "epoll_create1", 0)
        kern.call(proc, "epoll_ctl", ep, EPOLL_CTL_ADD, sfd, EPOLLIN)
        assert kern.call(proc, "epoll_pwait", ep, 8,
                         timeout_ns=5_000_000) == []

        def sender():
            time.sleep(0.05)
            proc.generate_signal(SIGUSR1, sender_pid=42)

        t = threading.Thread(target=sender)
        t.start()
        t0 = time.monotonic()
        ready = kern.call(proc, "epoll_pwait", ep, 8,
                          timeout_ns=5_000_000_000)
        elapsed = time.monotonic() - t0
        t.join()
        assert ready == [(sfd, EPOLLIN)]
        assert elapsed < 1.0  # woke on the signal edge, not the timeout
        assert decode_siginfo(
            kern.call(proc, "read", sfd, SIGNALFD_SIGINFO_SIZE))[:3] == \
            (SIGUSR1, 0, 42)
        # drained: level goes low again
        assert kern.call(proc, "epoll_pwait", ep, 8,
                         timeout_ns=5_000_000) == []

    def test_default_ignored_signal_still_reaches_signalfd(self, kern, proc):
        """SIGCHLD's default disposition is ignore, but a signalfd whose
        mask holds it is a consumer: generation must queue it."""
        from repro.kernel import SIGCHLD

        sfd = self._sfd(kern, proc, SIGCHLD)
        proc.generate_signal(SIGCHLD, sender_pid=7)
        signo, _, pid, _ = decode_siginfo(
            kern.call(proc, "read", sfd, SIGNALFD_SIGINFO_SIZE))
        assert (signo, pid) == (SIGCHLD, 7)

    def test_close_removes_consumer(self, kern, proc):
        sfd = self._sfd(kern, proc, SIGUSR1)
        assert len(proc.signalfds) == 1
        kern.call(proc, "close", sfd)
        assert proc.signalfds == []


class TestPpollSemantics:
    def test_pollhup_on_closed_peer(self, kern, proc):
        a, b = _stream_pair(kern, proc)
        kern.call(proc, "close", b)
        ready = dict(kern.call(proc, "ppoll", [(a, POLLIN)], 100_000_000))
        assert ready[a] & POLLHUP
        assert ready[a] & POLLIN  # EOF is readable

    def test_pollerr_on_widowed_pipe_write_end(self, kern, proc):
        r, w = kern.call(proc, "pipe2", 0)
        kern.call(proc, "close", r)
        # POLLERR must arrive even though only POLLOUT was requested
        ready = dict(kern.call(proc, "ppoll", [(w, POLLOUT)], 100_000_000))
        assert ready[w] & POLLERR

    def test_pollhup_on_widowed_pipe_read_end(self, kern, proc):
        r, w = kern.call(proc, "pipe2", 0)
        kern.call(proc, "close", w)
        ready = dict(kern.call(proc, "ppoll", [(r, POLLIN)], 100_000_000))
        assert ready[r] & POLLHUP

    def test_pollnval_for_bad_fd(self, kern, proc):
        ready = dict(kern.call(proc, "ppoll", [(742, POLLIN)], 1_000_000))
        assert ready[742] == POLLNVAL

    def test_prompt_wakeup_not_slice_rescan(self, kern, proc):
        a, b = _stream_pair(kern, proc)

        def writer():
            time.sleep(0.05)
            kern.call(proc, "sendto", b, b"now")

        t = threading.Thread(target=writer)
        t.start()
        t0 = time.monotonic()
        ready = kern.call(proc, "ppoll", [(a, POLLIN)], 5_000_000_000)
        elapsed = time.monotonic() - t0
        t.join()
        assert dict(ready)[a] & POLLIN
        assert elapsed < 1.0

    def test_pselect6_wakes_on_close(self, kern, proc):
        a, b = _stream_pair(kern, proc)

        def closer():
            time.sleep(0.05)
            kern.call(proc, "close", b)

        t = threading.Thread(target=closer)
        t.start()
        r_ready, w_ready = kern.call(proc, "pselect6", [a], [],
                                     5_000_000_000)
        t.join()
        assert a in r_ready

    def test_ppoll_over_epoll_fd(self, kern, proc):
        """epoll fds are themselves pollable (nesting)."""
        a, b = _stream_pair(kern, proc)
        ep = kern.call(proc, "epoll_create1", 0)
        kern.call(proc, "epoll_ctl", ep, EPOLL_CTL_ADD, a, EPOLLIN)
        assert kern.call(proc, "ppoll", [(ep, POLLIN)], 5_000_000) == []
        kern.call(proc, "sendto", b, b"deep")
        ready = dict(kern.call(proc, "ppoll", [(ep, POLLIN)],
                               1_000_000_000))
        assert ready[ep] & POLLIN


class TestEpollThroughWali:
    def test_guest_event_loop_server(self):
        """The event-loop memcached serves ≥ 50 concurrent clients from a
        single thread, driven end-to-end through WALI epoll syscalls."""
        from repro.apps import build
        from repro.wali import WaliRuntime

        rt = WaliRuntime()
        server = rt.load(build("mini_memcached"),
                         argv=["memcached", "11211", "-e"])
        server.start_in_thread()
        for _ in range(500):
            if b"ready" in rt.kernel.console_output():
                break
            time.sleep(0.01)
        else:
            pytest.fail("server did not come up")

        k = rt.kernel
        cp = k.create_process(["pyclient"])
        fds = []
        for i in range(50):
            fd = k.call(cp, "socket", AF_INET, SOCK_STREAM)
            k.call(cp, "connect", fd, ("127.0.0.1", 11211))
            fds.append(fd)

        def recvline(fd):
            out = b""
            while not out.endswith(b"\n"):
                data, _ = k.call(cp, "recvfrom", fd, 256)
                if not data:
                    break
                out += data
            return out.decode().strip()

        # all 50 requests outstanding before any reply is read
        for i, fd in enumerate(fds):
            k.call(cp, "sendto", fd, f"set k{i} v{i}\n".encode())
        for i, fd in enumerate(fds):
            assert recvline(fd) == "STORED"
        for i, fd in enumerate(fds):
            k.call(cp, "sendto", fd, f"get k{i}\n".encode())
        for i, fd in enumerate(fds):
            assert recvline(fd) == f"VALUE v{i}"
        # single-threaded: no worker LWPs were cloned for the 50 clients
        assert k.syscall_counts.get("clone", 0) == 0
        k.call(cp, "sendto", fds[0], b"shutdown\n")
        assert recvline(fds[0]) == "BYE"
        server.join(5)

    def test_guest_epoll_eventfd_timerfd(self):
        from repro.apps import with_libc
        from repro.cc import compile_source
        from repro.wali import WaliRuntime

        src = r"""
buffer evs[96];
buffer rd[8];
export func _start() {
    var ep: i32 = cret(SYS_epoll_create1(0));
    var efd: i32 = cret(SYS_eventfd2(2, 0));
    epoll_add(ep, efd, EPOLLIN);
    if (epoll_wait(ep, evs, 8, 1000) != 1) { exit(1); }
    if (ev_fd(evs, 0) != efd) { exit(2); }
    read(efd, rd, 8);
    if (load32(rd) != 2) { exit(3); }
    if (epoll_wait(ep, evs, 8, 10) != 0) { exit(4); }
    var tfd: i32 = cret(SYS_timerfd_create(1, 0));
    var its: i32 = malloc(32);
    store64(its, i64(0)); store64(its + 8, i64(0));
    store64(its + 16, i64(0)); store64(its + 24, i64(20000000));
    SYS_timerfd_settime(tfd, 0, its, 0);
    epoll_add(ep, tfd, EPOLLIN);
    if (epoll_wait(ep, evs, 8, 2000) != 1) { exit(5); }
    if (ev_fd(evs, 0) != tfd) { exit(6); }
    exit(0);
}
"""
        rt = WaliRuntime()
        wp = rt.load(compile_source(with_libc(src), name="ev"),
                     argv=["ev"])
        assert wp.run() == 0

    def test_event_echo_workload_app(self):
        from repro.apps import build
        from repro.wali import WaliRuntime

        rt = WaliRuntime()
        wp = rt.load(build("event_echo"), argv=["event_echo", "50", "4"])
        assert wp.run() == 0
        assert b"echo ok echoes=200" in rt.kernel.console_output()


class TestWakeCoalescing:
    """The per-epoll dirty flag: a burst of readiness transitions on a
    hot fd costs one waiter notification per ready-list drain, not one
    per transition (the ROADMAP's edge-triggered wakeup coalescing)."""

    def test_one_wake_per_ready_list_drain_under_burst(self, kern, proc):
        a, b = _stream_pair(kern, proc)
        ep = kern.call(proc, "epoll_create1", 0)
        kern.call(proc, "epoll_ctl", ep, EPOLL_CTL_ADD, a, EPOLLIN)
        kern.call(proc, "epoll_pwait", ep, 8, timeout_ns=0)  # level drain
        wakes = []
        proc.fdtable.get(ep).obj.wq.subscribe(wakes.append)

        for _ in range(100):  # 100 transitions on the same hot fd
            kern.call(proc, "sendto", b, b"x")
        assert len(wakes) == 1, wakes

        # a drain re-arms the notification...
        assert kern.call(proc, "epoll_pwait", ep, 8,
                         timeout_ns=0) == [(a, EPOLLIN)]
        for _ in range(100):
            kern.call(proc, "sendto", b, b"y")
        # ...so the next burst costs exactly one more wake
        assert len(wakes) == 2, wakes

    def test_coalescing_does_not_lose_wakeups_across_waits(self, kern, proc):
        """A blocked epoll_pwait still wakes promptly for a transition
        that arrives after the previous drain lowered the dirty flag."""
        a, b = _stream_pair(kern, proc)
        ep = kern.call(proc, "epoll_create1", 0)
        kern.call(proc, "epoll_ctl", ep, EPOLL_CTL_ADD, a, EPOLLIN)
        kern.call(proc, "epoll_pwait", ep, 8, timeout_ns=0)

        t = threading.Timer(0.05, lambda: kern.call(proc, "sendto", b, b"z"))
        t.start()
        t0 = time.perf_counter()
        ready = kern.call(proc, "epoll_pwait", ep, 8,
                          timeout_ns=2_000_000_000)
        elapsed = time.perf_counter() - t0
        assert ready == [(a, EPOLLIN)]
        assert elapsed < 1.0  # woken by the event, not the timeout
