"""The WASI-over-WALI conformance suite — the repository's analog of
running libuvwasi's 22-test ctest harness unmodified over WALI (§4.1, E2).

Every WASI operation below reaches the kernel *only* through WALI name-bound
imports (asserted at the end), realising Fig. 1's layering.
"""

import struct

import pytest

from repro.wali import WaliRuntime
from repro.wasi import MODULE, spec, wasi_over_wali
from repro.wasi.spec import (
    EBADF, ENOENT, ENOTCAPABLE, ESUCCESS, FILETYPE_DIRECTORY,
    FILETYPE_REGULAR_FILE, OFLAGS_CREAT, OFLAGS_TRUNC, RIGHTS_ALL,
    RIGHTS_FD_READ, RIGHTS_FD_WRITE, WHENCE_CUR, WHENCE_END, WHENCE_SET,
)
from repro.wasm import ModuleBuilder, instantiate
from repro.wasm.errors import GuestExit


class Harness:
    """A WASI host layered over WALI plus a guest memory to marshal in."""

    def __init__(self, preopens=None, argv=None, env=None):
        self.rt = WaliRuntime()
        self.rt.kernel.vfs.mkdirs("/sandbox")
        self.host, self.wp = wasi_over_wali(
            self.rt, argv or ["app", "a1"], env or {"K": "V"},
            preopens or {"/sandbox": "/sandbox"})
        mb = ModuleBuilder("wasi-harness")
        mb.add_memory(32, 256)
        self.inst = instantiate(mb.build())
        self.wp.instance = self.inst
        from repro.wali.mmap_pool import MmapPool

        self.wp.pool = MmapPool(self.inst.memory)
        self.wp.proc.mm = self.wp.pool.space
        self.ns = self.host.imports()[MODULE]
        self.mem = self.inst.memory

    def call(self, name, *args):
        return self.ns[name].fn(*args)

    # convenience regions inside guest memory for test buffers
    BUF = 4096
    IOV = 8192
    OUT = 16384

    def put(self, addr, data: bytes):
        self.mem.write(addr, data)

    def cstr_args(self, addr, s: str):
        data = s.encode()
        self.mem.write(addr, data)
        return addr, len(data)

    def iov(self, addr, entries):
        """Write an iovec array at addr; entries = [(ptr, len)]."""
        for i, (p, n) in enumerate(entries):
            self.mem.write(addr + 8 * i, struct.pack("<II", p, n))
        return addr, len(entries)

    def open_file(self, name, oflags=0, rights=RIGHTS_ALL, fdflags=0):
        dirfd = self.preopen_fd()
        p, plen = self.cstr_args(self.BUF, name)
        assert self.call("path_open", dirfd, 1, p, plen, oflags,
                         rights, rights, fdflags, self.OUT) == ESUCCESS
        return self.mem.load_i32(self.OUT)

    def preopen_fd(self):
        self.call("fd_prestat_get", 3, self.OUT)  # force init
        return next(iter(self.host.preopens))


@pytest.fixture
def h():
    return Harness()


# ---- 22 conformance tests (libuvwasi suite analog) ----

def test_01_args_sizes_and_get(h):
    assert h.call("args_sizes_get", h.OUT, h.OUT + 4) == ESUCCESS
    assert h.mem.load_i32(h.OUT) == 2
    size = h.mem.load_i32(h.OUT + 4)
    assert size == len(b"app\x00a1\x00")
    assert h.call("args_get", h.BUF, h.BUF + 64) == ESUCCESS
    p0 = h.mem.load_i32(h.BUF)
    assert h.mem.read_cstr(p0) == b"app"
    p1 = h.mem.load_i32(h.BUF + 4)
    assert h.mem.read_cstr(p1) == b"a1"


def test_02_environ(h):
    assert h.call("environ_sizes_get", h.OUT, h.OUT + 4) == ESUCCESS
    assert h.mem.load_i32(h.OUT) == 1
    assert h.call("environ_get", h.BUF, h.BUF + 64) == ESUCCESS
    assert h.mem.read_cstr(h.mem.load_i32(h.BUF)) == b"K=V"


def test_03_clock_time_get(h):
    assert h.call("clock_time_get", spec.CLOCKID_MONOTONIC, 0,
                  h.OUT) == ESUCCESS
    t1 = h.mem.load_i64(h.OUT)
    h.call("clock_time_get", spec.CLOCKID_MONOTONIC, 0, h.OUT)
    assert h.mem.load_i64(h.OUT) >= t1 > 0


def test_04_prestat(h):
    fd = h.preopen_fd()
    assert h.call("fd_prestat_get", fd, h.OUT) == ESUCCESS
    tag = h.mem.data[h.OUT]
    namelen = h.mem.load_i32(h.OUT + 4)
    assert tag == 0 and namelen == len("/sandbox")
    assert h.call("fd_prestat_dir_name", fd, h.BUF, namelen) == ESUCCESS
    assert h.mem.read_bytes(h.BUF, namelen) == b"/sandbox"
    assert h.call("fd_prestat_get", 99, h.OUT) == EBADF


def test_05_path_open_write_read(h):
    fd = h.open_file("f.txt", OFLAGS_CREAT)
    h.put(h.BUF + 512, b"hello wasi")
    iov, n = h.iov(h.IOV, [(h.BUF + 512, 10)])
    assert h.call("fd_write", fd, iov, n, h.OUT) == ESUCCESS
    assert h.mem.load_i32(h.OUT) == 10
    h.call("fd_seek", fd, 0, WHENCE_SET, h.OUT)
    iov, n = h.iov(h.IOV, [(h.BUF + 600, 32)])
    assert h.call("fd_read", fd, iov, n, h.OUT) == ESUCCESS
    assert h.mem.load_i32(h.OUT) == 10
    assert h.mem.read_bytes(h.BUF + 600, 10) == b"hello wasi"
    assert h.call("fd_close", fd) == ESUCCESS


def test_06_scattered_iovecs(h):
    fd = h.open_file("sg.txt", OFLAGS_CREAT)
    h.put(h.BUF + 512, b"AAAA")
    h.put(h.BUF + 600, b"BB")
    iov, n = h.iov(h.IOV, [(h.BUF + 512, 4), (h.BUF + 600, 2)])
    h.call("fd_write", fd, iov, n, h.OUT)
    assert h.mem.load_i32(h.OUT) == 6
    assert h.rt.kernel.vfs.read_file("/sandbox/sg.txt") == b"AAAABB"


def test_07_fd_seek_tell(h):
    fd = h.open_file("seek.txt", OFLAGS_CREAT)
    h.put(h.BUF + 512, b"0123456789")
    iov, n = h.iov(h.IOV, [(h.BUF + 512, 10)])
    h.call("fd_write", fd, iov, n, h.OUT)
    assert h.call("fd_seek", fd, 4, WHENCE_SET, h.OUT) == ESUCCESS
    assert h.mem.load_i64(h.OUT) == 4
    assert h.call("fd_seek", fd, -2, WHENCE_END, h.OUT) == ESUCCESS
    assert h.mem.load_i64(h.OUT) == 8
    assert h.call("fd_tell", fd, h.OUT) == ESUCCESS
    assert h.mem.load_i64(h.OUT) == 8


def test_08_fd_pread_pwrite(h):
    fd = h.open_file("p.txt", OFLAGS_CREAT)
    h.put(h.BUF + 512, b"abcdef")
    iov, n = h.iov(h.IOV, [(h.BUF + 512, 6)])
    h.call("fd_pwrite", fd, iov, n, 0, h.OUT)
    iov, n = h.iov(h.IOV, [(h.BUF + 600, 3)])
    assert h.call("fd_pread", fd, iov, n, 2, h.OUT) == ESUCCESS
    assert h.mem.read_bytes(h.BUF + 600, 3) == b"cde"
    # offset must not move
    h.call("fd_tell", fd, h.OUT)
    assert h.mem.load_i64(h.OUT) == 0


def test_09_fd_filestat(h):
    fd = h.open_file("st.txt", OFLAGS_CREAT)
    h.put(h.BUF + 512, b"xyz")
    iov, n = h.iov(h.IOV, [(h.BUF + 512, 3)])
    h.call("fd_write", fd, iov, n, h.OUT)
    assert h.call("fd_filestat_get", fd, h.OUT) == ESUCCESS
    filetype = h.mem.data[h.OUT + 16]
    size = h.mem.load_i64(h.OUT + 32)
    assert filetype == FILETYPE_REGULAR_FILE
    assert size == 3


def test_10_fd_filestat_set_size(h):
    fd = h.open_file("tr.txt", OFLAGS_CREAT)
    assert h.call("fd_filestat_set_size", fd, 128) == ESUCCESS
    assert h.rt.kernel.vfs.lookup("/sandbox/tr.txt").size == 128


def test_11_fd_fdstat(h):
    fd = h.open_file("fs.txt", OFLAGS_CREAT, fdflags=spec.FDFLAGS_APPEND)
    assert h.call("fd_fdstat_get", fd, h.OUT) == ESUCCESS
    assert h.mem.data[h.OUT] == FILETYPE_REGULAR_FILE
    flags = struct.unpack_from("<H", h.mem.data, h.OUT + 2)[0]
    assert flags & spec.FDFLAGS_APPEND
    assert h.call("fd_fdstat_set_flags", fd, 0) == ESUCCESS


def test_12_path_filestat(h):
    h.rt.kernel.vfs.write_file("/sandbox/pf.txt", b"1234")
    dirfd = h.preopen_fd()
    p, plen = h.cstr_args(h.BUF, "pf.txt")
    assert h.call("path_filestat_get", dirfd, 1, p, plen, h.OUT) == ESUCCESS
    assert h.mem.load_i64(h.OUT + 32) == 4


def test_13_create_remove_directory(h):
    dirfd = h.preopen_fd()
    p, plen = h.cstr_args(h.BUF, "newdir")
    assert h.call("path_create_directory", dirfd, p, plen) == ESUCCESS
    assert h.rt.kernel.vfs.lookup("/sandbox/newdir").is_dir
    assert h.call("path_remove_directory", dirfd, p, plen) == ESUCCESS
    assert not h.rt.kernel.vfs.exists("/sandbox/newdir")


def test_14_unlink_file(h):
    h.rt.kernel.vfs.write_file("/sandbox/u.txt", b"")
    dirfd = h.preopen_fd()
    p, plen = h.cstr_args(h.BUF, "u.txt")
    assert h.call("path_unlink_file", dirfd, p, plen) == ESUCCESS
    assert not h.rt.kernel.vfs.exists("/sandbox/u.txt")


def test_15_rename(h):
    h.rt.kernel.vfs.write_file("/sandbox/old.txt", b"data")
    dirfd = h.preopen_fd()
    po, plo = h.cstr_args(h.BUF, "old.txt")
    pn, pln = h.cstr_args(h.BUF + 100, "new.txt")
    assert h.call("path_rename", dirfd, po, plo, dirfd, pn, pln) == ESUCCESS
    assert h.rt.kernel.vfs.read_file("/sandbox/new.txt") == b"data"


def test_16_symlink_readlink(h):
    dirfd = h.preopen_fd()
    pt, plt = h.cstr_args(h.BUF, "target.txt")
    pl, pll = h.cstr_args(h.BUF + 100, "link")
    assert h.call("path_symlink", pt, plt, dirfd, pl, pll) == ESUCCESS
    assert h.call("path_readlink", dirfd, pl, pll, h.BUF + 200, 64,
                  h.OUT) == ESUCCESS
    n = h.mem.load_i32(h.OUT)
    assert h.mem.read_bytes(h.BUF + 200, n) == b"target.txt"


def test_17_readdir(h):
    h.rt.kernel.vfs.write_file("/sandbox/a.txt", b"")
    h.rt.kernel.vfs.write_file("/sandbox/b.txt", b"")
    fd = h.open_file(".", spec.OFLAGS_DIRECTORY)
    assert h.call("fd_readdir", fd, h.BUF, 512, 0, h.OUT) == ESUCCESS
    used = h.mem.load_i32(h.OUT)
    blob = h.mem.read_bytes(h.BUF, used)
    assert b"a.txt" in blob and b"b.txt" in blob


def test_18_fd_renumber(h):
    fd = h.open_file("rn.txt", OFLAGS_CREAT)
    assert h.call("fd_renumber", fd, 9) == ESUCCESS
    h.put(h.BUF + 512, b"zz")
    iov, n = h.iov(h.IOV, [(h.BUF + 512, 2)])
    assert h.call("fd_write", 9, iov, n, h.OUT) == ESUCCESS
    assert h.call("fd_write", fd, iov, n, h.OUT) == EBADF


def test_19_random_get(h):
    assert h.call("random_get", h.BUF, 16) == ESUCCESS
    data = h.mem.read_bytes(h.BUF, 16)
    assert data != b"\x00" * 16


def test_20_errno_mapping(h):
    dirfd = h.preopen_fd()
    p, plen = h.cstr_args(h.BUF, "missing.txt")
    assert h.call("path_open", dirfd, 1, p, plen, 0, RIGHTS_ALL, RIGHTS_ALL,
                  0, h.OUT) == ENOENT
    assert h.call("fd_close", 1234) == EBADF


def test_21_capability_sandbox(h):
    dirfd = h.preopen_fd()
    p, plen = h.cstr_args(h.BUF, "/etc/passwd")
    assert h.call("path_open", dirfd, 1, p, plen, 0, RIGHTS_ALL, RIGHTS_ALL,
                  0, h.OUT) == ENOTCAPABLE
    p, plen = h.cstr_args(h.BUF, "../etc/passwd")
    assert h.call("path_open", dirfd, 1, p, plen, 0, RIGHTS_ALL, RIGHTS_ALL,
                  0, h.OUT) == ENOTCAPABLE
    # inside-sandbox dotdot is fine
    h.rt.kernel.vfs.mkdirs("/sandbox/sub")
    p, plen = h.cstr_args(h.BUF, "sub/../ok.txt")
    assert h.call("path_open", dirfd, 1, p, plen, OFLAGS_CREAT, RIGHTS_ALL,
                  RIGHTS_ALL, 0, h.OUT) == ESUCCESS


def test_22_proc_exit_and_layering_proof(h):
    with pytest.raises(GuestExit) as ei:
        h.call("proc_exit", 17)
    assert ei.value.status == 17
    # every kernel interaction above went through WALI name-bound imports
    assert h.host.backend.calls_made, "backend never used"
    wali_only = set(h.host.backend.calls_made)
    assert "exit_group" in wali_only


# ---- a real WASI guest module through the same stack ----

def test_guest_module_hello_over_wali():
    from repro.wasi import run_wasi_module
    from repro.wasm import I32

    mb = ModuleBuilder("wasi-hello")
    mb.import_func(MODULE, "fd_write", [I32, I32, I32, I32], [I32])
    mb.add_memory(2, 64)
    mb.add_data(64, b"hi from wasi\n")
    mb.add_data(32, struct.pack("<II", 64, 13))  # one iovec
    f = mb.func("_start", export=True)
    f.i32_const(1).i32_const(32).i32_const(1).i32_const(128)
    f.call("fd_write").op("drop")
    f.end()

    rt = WaliRuntime()
    status = run_wasi_module(mb.build(), rt)
    assert status == 0
    assert rt.kernel.console_output() == b"hi from wasi\n"
