"""Binary codec tests: LEB128 and module round-trips (incl. property-based)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.wasm import (
    DecodeError, I32, I64, F64, ModuleBuilder, decode_module, encode_module,
    instantiate, validate_module,
)
from repro.wasm.binary import Reader, encode_sleb, encode_uleb


class TestLEB128:
    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_uleb_roundtrip(self, v):
        assert Reader(encode_uleb(v)).uleb() == v

    @given(st.integers(min_value=-(2**63), max_value=2**63 - 1))
    def test_sleb_roundtrip(self, v):
        assert Reader(encode_sleb(v)).sleb() == v

    def test_known_encodings(self):
        assert encode_uleb(0) == b"\x00"
        assert encode_uleb(624485) == b"\xe5\x8e\x26"
        assert encode_sleb(-123456) == b"\xc0\xbb\x78"

    def test_uleb_rejects_negative(self):
        with pytest.raises(ValueError):
            encode_uleb(-1)

    def test_truncated_input_raises(self):
        with pytest.raises(DecodeError):
            Reader(b"\x80").uleb()


def _rich_module():
    mb = ModuleBuilder("rich")
    mb.import_func("wali", "SYS_write", params=[I32, I32, I32], results=[I64])
    mb.add_memory(2, 10)
    gi = mb.add_global(I32, 7, export="g")
    mb.add_data(16, b"hello world\x00")

    helper = mb.func("helper", params=[I32], results=[I32])
    helper.local_get(0).i32_const(3).op("i32.mul")
    helper.end()

    f = mb.func("main", params=[I32, I32], results=[I32], export=True)
    tmp = f.add_local(I64)
    acc = f.add_local(I32)
    f.local_get(0)
    with f.if_(I32):
        f.local_get(0).call("helper")
        f.else_()
        f.i32_const(0)
    f.local_set(acc)
    with f.block():
        with f.loop():
            f.local_get(1).op("i32.eqz")
            f.br_if(1)
            f.local_get(acc).i32_const(1).op("i32.add").local_set(acc)
            f.local_get(1).i32_const(1).op("i32.sub").local_set(1)
            f.br(0)
    f.local_get(acc).global_get(gi).op("i32.add")
    f.end()

    ft = mb.func("table_target", params=[I32], results=[I32])
    ft.local_get(0)
    ft.end()
    mb.add_elem(0, [mb.func_index("table_target")])
    return mb.build()


class TestModuleRoundtrip:
    def test_roundtrip_preserves_structure(self):
        m = _rich_module()
        data = encode_module(m)
        assert data[:4] == b"\x00asm"
        m2 = decode_module(data)
        assert m2.types == m.types
        assert [i.name for i in m2.imports] == [i.name for i in m.imports]
        assert len(m2.funcs) == len(m.funcs)
        for a, b in zip(m.funcs, m2.funcs):
            assert a.locals == b.locals
            assert a.body == b.body
        assert m2.datas[0].data == m.datas[0].data
        assert m2.elems[0].func_idxs == m.elems[0].func_idxs
        assert [e.name for e in m2.exports] == [e.name for e in m.exports]

    def test_roundtrip_validates_and_runs(self):
        m = _rich_module()
        m2 = decode_module(encode_module(m))
        validate_module(m2)
        inst = instantiate(m2, {"wali": {"SYS_write": lambda *a: 0}})
        assert inst.invoke("main", 2, 5) == 2 * 3 + 5 + 7

    def test_double_roundtrip_is_stable(self):
        m = _rich_module()
        d1 = encode_module(m)
        d2 = encode_module(decode_module(d1))
        assert d1 == d2

    def test_bad_magic_rejected(self):
        with pytest.raises(DecodeError):
            decode_module(b"\x00elf\x01\x00\x00\x00")

    def test_bad_version_rejected(self):
        with pytest.raises(DecodeError):
            decode_module(b"\x00asm\x02\x00\x00\x00")

    def test_truncated_module_rejected(self):
        data = encode_module(_rich_module())
        with pytest.raises(DecodeError):
            decode_module(data[:-5])


# ---- property-based: random straight-line arithmetic programs round-trip
# and compute the same result before and after encoding ----

_I32_OPS = ["i32.add", "i32.sub", "i32.mul", "i32.and", "i32.or", "i32.xor",
            "i32.shl", "i32.shr_u", "i32.rotl", "i32.eq", "i32.lt_u"]


@st.composite
def arith_program(draw):
    """A list of (op or const) producing exactly one i32, stack-safely."""
    prog = []
    depth = 0
    for _ in range(draw(st.integers(min_value=1, max_value=30))):
        if depth >= 2 and draw(st.booleans()):
            prog.append((draw(st.sampled_from(_I32_OPS)),))
            depth -= 1
        else:
            prog.append(("i32.const", draw(st.integers(0, 2**32 - 1))))
            depth += 1
    while depth > 1:
        prog.append((draw(st.sampled_from(_I32_OPS)),))
        depth -= 1
    return prog


@settings(max_examples=60, deadline=None)
@given(arith_program())
def test_random_program_roundtrip_same_result(prog):
    mb = ModuleBuilder("p")
    f = mb.func("f", results=[I32], export=True)
    for instr in prog:
        f.emit(instr)
    f.end()
    m = mb.build()
    validate_module(m)
    r1 = instantiate(m).invoke("f")
    m2 = decode_module(encode_module(m))
    validate_module(m2)
    r2 = instantiate(m2).invoke("f")
    assert r1 == r2


@settings(max_examples=30, deadline=None)
@given(st.binary(min_size=0, max_size=64))
def test_decoder_never_crashes_on_garbage(blob):
    """Arbitrary bytes either decode or raise DecodeError — never crash."""
    try:
        decode_module(b"\x00asm\x01\x00\x00\x00" + blob)
    except DecodeError:
        pass
    except (KeyError, ValueError, IndexError) as exc:  # pragma: no cover
        pytest.fail(f"decoder leaked {type(exc).__name__}: {exc}")
