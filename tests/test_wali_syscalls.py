"""WALI interface tests: spec, translation, layouts, security, signals,
mmap-in-linear-memory, fork/exec, and the support calls."""

import pytest

from repro.cc import compile_source
from repro.apps import with_libc
from repro.kernel import SIGINT, SIGUSR1, SIGTERM
from repro.kernel.calls.fs import Stat
from repro.wali import (
    AUTO_PASSTHROUGH, GUEST_LAYOUT, Layout, SYSCALLS, SecurityPolicy,
    WaliRuntime, coverage_report, handler_loc, implemented_names,
)
from repro.wasm import I32, I64, ModuleBuilder, Trap
from repro.wasm.errors import TrapSyscall


def run_guest(source, argv=None, env=None, runtime=None, files=None):
    rt = runtime or WaliRuntime()
    if files:
        for path, data in files.items():
            rt.kernel.vfs.write_file(path, data)
    mod = compile_source(with_libc(source), name="test")
    wp = rt.load(mod, argv=argv or ["test"], env=env or {})
    status = wp.run()
    return rt, wp, status


class TestSpec:
    def test_spec_size_matches_paper_scale(self):
        # the paper implements ~137-150 syscalls; our spec stays near that
        # scale (slightly above, since we also bind the full sync family)
        assert 130 <= len(SYSCALLS) <= 180

    def test_implemented_coverage(self):
        names = implemented_names()
        assert len(names) >= 130
        for required in ("read", "write", "mmap", "fork", "execve",
                         "rt_sigaction", "clone", "futex", "socket"):
            assert required in names

    def test_import_names_are_name_bound(self):
        assert SYSCALLS["read"].import_name == "SYS_read"
        assert SYSCALLS["read"].functype.results == (I64,)

    def test_union_spec_covers_all_arches(self):
        rep = coverage_report()
        assert rep["in_union"] > 100
        for arch, count in rep["per_arch"].items():
            assert count > 90, arch

    def test_majority_auto_generated_or_small(self):
        # §5: most calls are passthrough; Table 2: most handlers <10 LOC
        locs = {n: handler_loc(n) for n in implemented_names()}
        small = sum(1 for v in locs.values() if v <= 10)
        assert small / len(locs) > 0.7
        assert len(AUTO_PASSTHROUGH & set(locs)) >= 40

    def test_stateful_flags(self):
        assert SYSCALLS["mmap"].stateful
        assert SYSCALLS["rt_sigaction"].stateful
        assert not SYSCALLS["read"].stateful


class TestLayouts:
    def _stat(self):
        return Stat(st_dev=1, st_ino=42, st_mode=0o100644, st_nlink=2,
                    st_uid=1000, st_gid=1000, st_size=12345,
                    st_blksize=4096, st_blocks=25,
                    st_atime_ns=1_500_000_789, st_mtime_ns=2_000_000_123,
                    st_ctime_ns=3_000_000_456)

    @pytest.mark.parametrize("arch", ["wali", "x86_64", "aarch64", "riscv64"])
    def test_stat_roundtrip(self, arch):
        lay = Layout(arch)
        st = self._stat()
        assert lay.decode_stat(lay.encode_stat(st)) == st

    def test_stat_layouts_differ_across_isas(self):
        st = self._stat()
        x86 = Layout("x86_64").encode_stat(st)
        arm = Layout("aarch64").encode_stat(st)
        assert x86 != arm
        assert len(x86) == 144
        assert len(arm) == 128

    def test_riscv_matches_aarch64_layout(self):
        st = self._stat()
        assert Layout("riscv64").encode_stat(st) == \
            Layout("aarch64").encode_stat(st)

    def test_convert_between_isas(self):
        st = self._stat()
        x86 = Layout("x86_64")
        data = x86.encode_stat(st)
        wali_bytes = x86.convert_stat(data, GUEST_LAYOUT)
        assert GUEST_LAYOUT.decode_stat(wali_bytes) == st

    def test_timespec_roundtrip(self):
        ns = 1_234_567_890_123
        assert Layout.decode_timespec(Layout.encode_timespec(ns)) == ns

    def test_sockaddr_roundtrip(self):
        data = Layout.encode_sockaddr(("127.0.0.1", 8080))
        family, addr = Layout.decode_sockaddr(data)
        assert family == 2
        assert addr == ("127.0.0.1", 8080)

    def test_sigaction_roundtrip(self):
        data = Layout.encode_sigaction(7, 0x10000000, 0xFF)
        assert Layout.decode_sigaction(data) == (7, 0x10000000, 0xFF)

    def test_dirents_respect_buffer_size(self):
        from repro.kernel.vfs import DirEntry

        entries = [DirEntry(i, f"file{i:03d}", 8) for i in range(100)]
        data, count = Layout.encode_dirents(entries, 256)
        assert 0 < count < 100
        assert len(data) <= 256


class TestGuestFileIO:
    def test_open_write_read(self):
        rt, wp, status = run_guest(r"""
export func _start() {
    var fd: i32 = open("/tmp/f.txt", O_CREAT | O_RDWR, 0x1b4);
    write(fd, "payload", 7);
    close(fd);
    fd = open("/tmp/f.txt", O_RDONLY, 0);
    var buf: i32 = malloc(32);
    var n: i32 = read(fd, buf, 32);
    write(STDOUT, buf, n);
    exit(0);
}
""")
        assert status == 0
        assert rt.kernel.console_output() == b"payload"

    def test_errno_on_missing_file(self):
        rt, wp, status = run_guest(r"""
export func _start() {
    var fd: i32 = open("/does/not/exist", O_RDONLY, 0);
    if (fd == -1 && errno == 2) { exit(42); }  // ENOENT
    exit(1);
}
""")
        assert status == 42

    def test_getcwd_chdir(self):
        rt, wp, status = run_guest(r"""
buffer cwd[128];
export func _start() {
    SYS_chdir("/tmp");
    SYS_getcwd(cwd, 128);
    println(cwd);
    exit(0);
}
""")
        assert rt.kernel.console_output() == b"/tmp\n"

    def test_stat_via_portable_layout(self):
        rt, wp, status = run_guest(r"""
buffer st[128];
export func _start() {
    var fd: i32 = open("/etc/passwd", O_RDONLY, 0);
    SYS_fstat(fd, st);
    // portable WALI kstat: st_size is the 8th u64 field (offset 56)
    print_int(i32(load64(st + 56)));
    exit(0);
}
""")
        expected = len(rt.kernel.vfs.read_file("/etc/passwd"))
        assert rt.kernel.console_output().decode() == str(expected)

    def test_readv_writev_iovec_translation(self):
        rt, wp, status = run_guest(r"""
extern func SYS_writev(fd: i32, iov: i32, n: i32) -> i64 from "wali";
buffer iov[16];
export func _start() {
    store32(iov, "abc");      // iov[0].base
    store32(iov + 4, 3);      // iov[0].len
    store32(iov + 8, "DEF");  // iov[1].base
    store32(iov + 12, 3);
    SYS_writev(STDOUT, iov, 2);
    exit(0);
}
""")
        assert rt.kernel.console_output() == b"abcDEF"

    def test_getdents_via_guest(self):
        rt, wp, status = run_guest(r"""
buffer dents[512];
export func _start() {
    SYS_mkdir("/tmp/d", 0x1ed);
    close(open("/tmp/d/a", O_CREAT, 0x1b4));
    close(open("/tmp/d/b", O_CREAT, 0x1b4));
    var fd: i32 = open("/tmp/d", O_RDONLY, 0);
    var n: i32 = i32(SYS_getdents64(fd, dents, 512));
    // walk records, print names (offset 19 in each record)
    var off: i32 = 0;
    while (off < n) {
        println(dents + off + 19);
        off = off + load16u(dents + off + 16);
    }
    exit(0);
}
""")
        assert rt.kernel.console_output() == b".\n..\na\nb\n"


class TestGuestMmap:
    def test_anonymous_mmap_inside_linear_memory(self):
        rt, wp, status = run_guest(r"""
export func _start() {
    var p: i32 = i32(SYS_mmap(0, 8192, 3, MAP_PRIVATE | MAP_ANONYMOUS,
                              -1, i64(0)));
    store32(p, 0xbeef);
    store32(p + 8188, 7);
    if (load32(p) == 0xbeef) { exit(0); }
    exit(1);
}
""")
        assert status == 0
        # mapping landed inside the pool region of linear memory
        assert wp.pool.space.total_mapped() >= 8192

    def test_mmap_is_zeroed(self):
        rt, wp, status = run_guest(r"""
export func _start() {
    var p: i32 = i32(SYS_mmap(0, 4096, 3, MAP_PRIVATE | MAP_ANONYMOUS,
                              -1, i64(0)));
    store32(p, 123);
    SYS_munmap(p, 4096);
    var q: i32 = i32(SYS_mmap(0, 4096, 3, MAP_PRIVATE | MAP_ANONYMOUS,
                              -1, i64(0)));
    exit(load32(q));  // must be zero even though p was reused
}
""")
        assert status == 0

    def test_file_mmap_reads_content(self):
        rt, wp, status = run_guest(r"""
export func _start() {
    var fd: i32 = open("/tmp/data.bin", O_RDONLY, 0);
    var p: i32 = i32(SYS_mmap(0, 4096, 1, MAP_PRIVATE, fd, i64(0)));
    write(STDOUT, p, 11);
    exit(0);
}
""", files={"/tmp/data.bin": b"mapped-data" + b"\x00" * 100})
        assert rt.kernel.console_output() == b"mapped-data"

    def test_shared_mmap_writeback(self):
        rt, wp, status = run_guest(r"""
const MAP_SHARED = 1;
export func _start() {
    var fd: i32 = open("/tmp/wb.bin", O_RDWR, 0);
    var p: i32 = i32(SYS_mmap(0, 4096, 3, MAP_SHARED, fd, i64(0)));
    store8(p, 'X');
    SYS_munmap(p, 4096);
    exit(0);
}
""", files={"/tmp/wb.bin": b"original" + b"\x00" * 4088})
        assert rt.kernel.vfs.read_file("/tmp/wb.bin")[:8] == b"Xriginal"

    def test_mremap_grows_and_preserves(self):
        rt, wp, status = run_guest(r"""
const MREMAP_MAYMOVE = 1;
export func _start() {
    var p: i32 = i32(SYS_mmap(0, 4096, 3, MAP_PRIVATE | MAP_ANONYMOUS,
                              -1, i64(0)));
    store32(p, 777);
    var q: i32 = i32(SYS_mremap(p, 4096, 65536, MREMAP_MAYMOVE, 0));
    if (q < 0) { exit(1); }
    exit(load32(q) == 777);
}
""")
        assert status == 1  # exit(1) means the value survived

    def test_mmap_grows_linear_memory_on_demand(self):
        rt, wp, status = run_guest(r"""
export func _start() {
    // 2 MiB: far beyond the initial memory size
    var p: i32 = i32(SYS_mmap(0, 0x200000, 3, MAP_PRIVATE | MAP_ANONYMOUS,
                              -1, i64(0)));
    store8(p + 0x1fffff, 1);
    exit(0);
}
""")
        assert status == 0
        assert wp.instance.memory.pages > 32

    def test_enomem_past_declared_max(self):
        src = with_libc(r"""
export func _start() {
    // ask for more than the module's max memory allows
    var r: i64 = SYS_mmap(0, 0x10000000, 3, MAP_PRIVATE | MAP_ANONYMOUS,
                          -1, i64(0));
    if (r == i64(-12)) { exit(0); }  // -ENOMEM
    exit(1);
}
""")
        mod = compile_source(src, name="t", max_pages=64)
        rt = WaliRuntime()
        assert rt.run(mod) == 0


class TestSecurity:
    def test_proc_self_mem_blocked(self):
        rt = WaliRuntime()
        mod = compile_source(with_libc(r"""
export func _start() {
    open("/proc/self/mem", O_RDONLY, 0);
    exit(0);
}
"""), name="evil")
        wp = rt.load(mod)
        status = wp.run()
        assert wp.trap is not None
        assert wp.trap.kind == "syscall-denied"

    def test_proc_pid_mem_blocked(self):
        rt = WaliRuntime()
        mod = compile_source(with_libc(r"""
export func _start() {
    open("/proc/1/mem", O_RDONLY, 0);
    exit(0);
}
"""), name="evil2")
        wp = rt.load(mod)
        wp.run()
        assert wp.trap is not None

    def test_proc_status_still_allowed(self):
        rt, wp, status = run_guest(r"""
buffer buf[512];
export func _start() {
    var fd: i32 = open("/proc/self/status", O_RDONLY, 0);
    if (fd < 0) { exit(1); }
    exit(0);
}
""")
        assert status == 0

    def test_prot_exec_stripped(self):
        from repro.kernel.mm import PROT_EXEC
        rt, wp, status = run_guest(r"""
export func _start() {
    // PROT_READ|PROT_WRITE|PROT_EXEC = 7
    var p: i32 = i32(SYS_mmap(0, 4096, 7, MAP_PRIVATE | MAP_ANONYMOUS,
                              -1, i64(0)));
    exit(p > 0);
}
""")
        assert status == 1
        for vma in wp.pool.space.vmas:
            assert not vma.prot & PROT_EXEC

    def test_sigreturn_traps(self):
        rt = WaliRuntime()
        mod = compile_source(with_libc(r"""
extern func SYS_rt_sigreturn() -> i64 from "wali";
export func _start() {
    SYS_rt_sigreturn();
    exit(0);
}
"""), name="srop")
        wp = rt.load(mod)
        wp.run()
        assert wp.trap is not None
        assert wp.trap.kind == "syscall-denied"

    def test_seccomp_like_policy_layer(self):
        policy = SecurityPolicy(deny={"socket"})
        rt = WaliRuntime(policy=policy)
        mod = compile_source(with_libc(r"""
export func _start() {
    SYS_socket(AF_INET, SOCK_STREAM, 0);
    exit(0);
}
"""), name="net")
        wp = rt.load(mod)
        wp.run()
        assert wp.trap is not None
        assert policy.denied_calls == ["socket"]

    def test_import_section_enumerates_capabilities(self):
        # §3.6: the import section statically lists every syscall the binary
        # can possibly make — and static linking keeps it minimal.
        mod = compile_source(with_libc(r"""
export func _start() {
    println("hi");
    exit(0);
}
"""), name="caps")
        names = {n for m, n in mod.import_names() if m == "wali"}
        assert "SYS_write" in names
        assert "SYS_exit_group" in names
        # unreachable syscalls were garbage-collected out of the image
        assert "SYS_socket" not in names
        assert "SYS_fork" not in names


class TestSignalsViaWali:
    def test_guest_handler_runs_at_safepoint(self):
        rt, wp, status = run_guest(r"""
global got: i32 = 0;
func on_usr1(sig: i32) { got = sig; }
export func _start() {
    signal(SIGUSR1, funcref(on_usr1));
    SYS_kill(i32(SYS_getpid()), SIGUSR1);
    var i: i32 = 0;
    while (got == 0 && i < 1000000) { i = i + 1; }  // loop safepoints poll
    exit(got);
}
""")
        assert status == SIGUSR1

    def test_blocked_signal_deferred_until_unblock(self):
        rt, wp, status = run_guest(r"""
global got: i32 = 0;
func on_usr1(sig: i32) { got = got + 1; }
export func _start() {
    signal(SIGUSR1, funcref(on_usr1));
    sigblock(SIGUSR1);
    SYS_kill(i32(SYS_getpid()), SIGUSR1);
    var i: i32 = 0;
    while (i < 100000) { i = i + 1; }
    if (got != 0) { exit(1); }    // must NOT be delivered while blocked
    sigunblock(SIGUSR1);           // §3.3: polled right after unblock
    if (got == 1) { exit(0); }
    exit(2);
}
""")
        assert status == 0

    def test_default_action_terminates(self):
        rt, wp, status = run_guest(r"""
export func _start() {
    SYS_kill(i32(SYS_getpid()), SIGTERM);
    var i: i32 = 0;
    while (i < 1000000) { i = i + 1; }
    exit(0);  // unreachable: SIGTERM default action kills us
}
""")
        assert status == 128 + SIGTERM

    def test_sig_ign_is_dropped(self):
        rt, wp, status = run_guest(r"""
export func _start() {
    signal(SIGTERM, 1);  // SIG_IGN
    SYS_kill(i32(SYS_getpid()), SIGTERM);
    var i: i32 = 0;
    while (i < 100000) { i = i + 1; }
    exit(0);
}
""")
        assert status == 0

    def test_old_action_returned(self):
        rt, wp, status = run_guest(r"""
buffer act[16];
buffer oldact[16];
func h1(sig: i32) { }
func h2(sig: i32) { }
export func _start() {
    store32(act, funcref(h1));
    store32(act + 4, 0);
    store64(act + 8, i64(0));
    SYS_rt_sigaction(SIGUSR1, act, 0, 8);
    store32(act, funcref(h2));
    SYS_rt_sigaction(SIGUSR1, act, oldact, 8);
    exit(load32(oldact) == funcref(h1));
}
""")
        assert status == 1

    def test_handler_mask_defers_same_signal(self):
        # Without SA_NODEFER, a nested identical signal is deferred (§3.3)
        rt, wp, status = run_guest(r"""
global depth: i32 = 0;
global max_depth: i32 = 0;
global count: i32 = 0;
func on_usr1(sig: i32) {
    depth = depth + 1;
    if (depth > max_depth) { max_depth = depth; }
    count = count + 1;
    if (count == 1) {
        SYS_kill(i32(SYS_getpid()), SIGUSR1);
        var i: i32 = 0;
        while (i < 10000) { i = i + 1; }   // poll points inside the handler
    }
    depth = depth - 1;
}
export func _start() {
    signal(SIGUSR1, funcref(on_usr1));
    SYS_kill(i32(SYS_getpid()), SIGUSR1);
    var i: i32 = 0;
    while (count < 2 && i < 1000000) { i = i + 1; }
    exit(max_depth);   // 1 = deferred (correct), 2 = nested (wrong)
}
""")
        assert status == 1


class TestProcessModelViaWali:
    def test_fork_returns_zero_in_child(self):
        rt, wp, status = run_guest(r"""
export func _start() {
    var pid: i32 = fork();
    if (pid == 0) {
        println("child");
        exit(11);
    }
    waitpid(pid, __io_buf);
    var code: i32 = (load32(__io_buf) >> 8) & 255;
    println("parent");
    exit(code);
}
""")
        assert status == 11
        out = rt.kernel.console_output()
        assert b"child" in out and b"parent" in out

    def test_fork_memory_is_copied(self):
        rt, wp, status = run_guest(r"""
buffer shared[4];
export func _start() {
    store32(shared, 1);
    var pid: i32 = fork();
    if (pid == 0) {
        store32(shared, 99);  // only the child's copy changes
        exit(0);
    }
    waitpid(pid, __io_buf);
    exit(load32(shared));
}
""")
        assert status == 1

    def test_execve_replaces_image(self):
        rt = WaliRuntime()
        from repro.apps import build, install_all
        install_all(rt, ["echo"])
        rt, wp, status = run_guest(r"""
buffer argvv[12];
export func _start() {
    store32(argvv, "/bin/echo.wasm");
    store32(argvv + 4, "from-exec");
    store32(argvv + 8, 0);
    execve("/bin/echo.wasm", argvv, 0);
    exit(9);  // unreachable on success
}
""", runtime=rt)
        assert status == 0
        assert b"from-exec" in rt.kernel.console_output()

    def test_execve_missing_file_returns(self):
        rt, wp, status = run_guest(r"""
buffer argvv[8];
export func _start() {
    store32(argvv, "/nope");
    store32(argvv + 4, 0);
    var r: i32 = execve("/nope", argvv, 0);
    if (r == -1 && errno == 2) { exit(5); }
    exit(1);
}
""")
        assert status == 5

    def test_threads_share_memory(self):
        rt, wp, status = run_guest(r"""
buffer counter[4];
buffer done[4];
func worker(arg: i32) {
    var i: i32 = 0;
    while (i < 1000) {
        atomic_add32(counter, 1);
        i = i + 1;
    }
    atomic_add32(done, 1);
}
export func _start() {
    thread_create(funcref(worker), 0);
    thread_create(funcref(worker), 0);
    var spins: i32 = 0;
    while (load32(done) < 2 && spins < 10000000) {
        SYS_sched_yield();
        spins = spins + 1;
    }
    exit(load32(counter) == 2000);
}
""")
        assert status == 1

    def test_getpid_vs_gettid_for_threads(self):
        rt, wp, status = run_guest(r"""
buffer results[8];
buffer done[4];
func worker(arg: i32) {
    store32(results, i32(SYS_getpid()));
    store32(results + 4, i32(SYS_gettid()));
    atomic_add32(done, 1);
}
export func _start() {
    var mypid: i32 = i32(SYS_getpid());
    thread_create(funcref(worker), 0);
    var spins: i32 = 0;
    while (load32(done) < 1 && spins < 10000000) {
        SYS_sched_yield();
        spins = spins + 1;
    }
    // same tgid, different tid
    exit((load32(results) == mypid) && (load32(results + 4) != mypid));
}
""")
        assert status == 1


class TestSupportCalls:
    def test_argv_passed_through_libc(self):
        rt, wp, status = run_guest(r"""
export func _start() {
    __init_args();
    print(argv(1));
    exit(argc());
}
""", argv=["prog", "xyz"])
        assert status == 2
        assert rt.kernel.console_output() == b"xyz"

    def test_env_explicit_not_inherited(self):
        rt, wp, status = run_guest(r"""
export func _start() {
    var v: i32 = getenv("ONLY");
    if (v == 0) { exit(1); }
    print(v);
    exit(0);
}
""", env={"ONLY": "this"})
        assert status == 0
        assert rt.kernel.console_output() == b"this"

    def test_missing_env_returns_null(self):
        rt, wp, status = run_guest(r"""
export func _start() {
    exit(getenv("NOPE") == 0);
}
""")
        assert status == 1


class TestBreakdownAccounting:
    def test_wali_time_is_small_fraction(self):
        rt, wp, status = run_guest(r"""
export func _start() {
    var fd: i32 = open("/tmp/x", O_CREAT | O_RDWR, 0x1b4);
    var i: i32 = 0;
    while (i < 200) {
        write(fd, "0123456789abcdef", 16);
        i = i + 1;
    }
    exit(0);
}
""")
        stats = wp.host.stats()
        assert stats["calls"] >= 200
        assert stats["zero_copy_translations"] >= 200
        bd = rt.breakdown(wp)
        assert bd["kernel_ns"] > 0
        assert bd["wali_ns"] >= 0
