"""Scheduler tests: run-queue semantics, time slices, nice-weight
fairness, yield/preempt ordering, and kernel integration.

Most tests drive the :class:`Scheduler` state machine directly with a
fake clock (deterministic, no threads); the integration tests at the end
exercise the real blocking paths through ``Kernel.call``.
"""

import threading
import time

import pytest

from repro.kernel import (
    BackgroundSpinners, Kernel, KernelError, Process, Scheduler,
    create_scheduler, nice_to_weight,
)
from repro.kernel.errno import EINVAL, EPERM, ESRCH
from repro.kernel.sched import (
    NICE_0_WEIGHT, SCHED_DEAD, SCHED_RUNNABLE, SCHED_RUNNING,
)

SLICE_US = 100


class FakeClock:
    def __init__(self):
        self.ns = 0

    def __call__(self):
        return self.ns

    def advance_us(self, us):
        self.ns += int(us * 1000)


def make_sched(ncpus=1, slice_us=SLICE_US):
    clock = FakeClock()
    return Scheduler(ncpus=ncpus, slice_us=slice_us, clock=clock), clock


def make_tasks(n):
    return [Process(i + 1, 0) for i in range(n)]


class TestRunQueue:
    """Queue/grant semantics with a fake clock (no threads, no waiting)."""

    def test_first_attach_runs_immediately(self):
        sched, _ = make_sched()
        (t1,) = make_tasks(1)
        sched.task_attach(t1)
        assert sched.running_pids() == [t1.pid]
        assert t1.se.state == SCHED_RUNNING

    def test_fifo_within_equal_vruntime(self):
        """Tasks enqueued at the same vruntime are granted in arrival
        order, never reordered."""
        sched, _ = make_sched()
        t1, t2, t3 = make_tasks(3)
        for t in (t1, t2, t3):
            sched.task_attach(t)  # all at vruntime 0
        assert sched.running_pids() == [t1.pid]
        sched.task_block(t1)
        assert sched.running_pids() == [t2.pid]
        sched.task_block(t2)
        assert sched.running_pids() == [t3.pid]

    def test_lowest_vruntime_runs_next(self):
        """After tasks accumulate different vruntimes, every pick takes
        the smallest one — not FIFO, not the longest-waiting."""
        sched, clock = make_sched()
        t1, t2, t3 = make_tasks(3)
        for t in (t1, t2, t3):
            sched.task_attach(t)
        clock.advance_us(120)
        sched.tick()                 # t1 preempted at vrt 120
        assert sched.running_pids() == [t2.pid]
        clock.advance_us(250)
        sched.tick()                 # t2 preempted at vrt 250
        assert sched.running_pids() == [t3.pid]
        clock.advance_us(150)
        sched.tick()                 # t3 preempted at vrt 150
        # queue holds t1@120, t2@250, t3@150: smallest vruntime wins
        assert sched.running_pids() == [t1.pid]
        sched.task_block(t1)
        assert sched.running_pids() == [t3.pid]  # 150 < 250

    def test_no_duplicate_enqueue_on_repeated_wake(self):
        sched, _ = make_sched()
        t1, t2 = make_tasks(2)
        sched.task_attach(t1)
        sched.task_attach(t2)
        sched.task_block(t2)
        for _ in range(5):
            sched.task_wake(t2)  # idempotent
        assert sched.runnable_pids() == [t2.pid]
        sched.task_block(t1)
        assert sched.running_pids() == [t2.pid]
        assert sched.runnable_pids() == []  # not granted twice

    def test_blocked_task_leaves_the_run_queue(self):
        sched, _ = make_sched()
        t1, t2 = make_tasks(2)
        sched.task_attach(t1)
        sched.task_attach(t2)
        assert sched.runnable_pids() == [t2.pid]
        sched.task_block(t2)
        assert sched.runnable_pids() == []
        assert sched.blocked_pids() == [t2.pid]

    def test_woken_task_is_not_starved(self):
        """A wakeup marks the worst-placed running task for preemption;
        the next tick hands the CPU over even mid-slice."""
        sched, clock = make_sched()
        t1, t2 = make_tasks(2)
        sched.task_attach(t1)
        sched.task_attach(t2)
        sched.task_block(t2)   # t2 sleeps at vruntime 0
        clock.advance_us(500)  # t1 runs far ahead in vruntime
        sched.check_preempt(t1)  # settle t1's clock (stays running)
        sched.task_wake(t2)
        assert t1.se.need_resched  # wakeup preemption armed
        clock.advance_us(SLICE_US // 2)  # past wakeup granularity
        sched.tick()
        assert sched.running_pids() == [t2.pid]

    def test_exit_frees_the_slot(self):
        sched, _ = make_sched()
        t1, t2 = make_tasks(2)
        sched.task_attach(t1)
        sched.task_attach(t2)
        sched.task_exit(t1)
        assert t1.se.state == SCHED_DEAD
        assert sched.live_pids() == [t2.pid]
        assert sched.running_pids() == [t2.pid]

    def test_work_conserving_two_slots(self):
        """A slot never idles while the queue is non-empty."""
        sched, _ = make_sched(ncpus=2)
        t1, t2, t3 = make_tasks(3)
        for t in (t1, t2, t3):
            sched.task_attach(t)
        assert sched.running_pids() == [t1.pid, t2.pid]
        sched.task_block(t1)
        assert sched.running_pids() == [t2.pid, t3.pid]

    def test_new_task_gets_no_vruntime_credit(self):
        """Late arrivals start at min_vruntime: they neither starve the
        incumbents nor inherit a deficit."""
        sched, clock = make_sched()
        (t1,) = make_tasks(1)
        sched.task_attach(t1)
        clock.advance_us(1000)
        sched.check_preempt(t1)  # charge the elapsed slice
        t2 = Process(99, 0)
        sched.task_attach(t2)
        assert t2.se.vruntime_ns >= sched.min_vruntime > 0

    def test_long_sleeper_rejoins_at_min_vruntime(self):
        sched, clock = make_sched()
        t1, t2 = make_tasks(2)
        sched.task_attach(t1)
        sched.task_attach(t2)
        sched.task_block(t2)  # sleeps with vruntime 0
        clock.advance_us(20 * SLICE_US)  # t1 runs for 20 slices
        sched.check_preempt(t1)          # settle t1's clock
        sched.task_wake(t2)
        # the sleeper's lag is capped: it rejoins one slice of bonus
        # below min_vruntime (t1's 20-slice runtime), not at its
        # ancient vruntime of 0
        assert t2.se.vruntime_ns >= \
            sched.min_vruntime - sched.slice_ns > 0

    def test_unconstrained_mode_grants_everyone(self):
        sched, _ = make_sched(ncpus=0)
        tasks = make_tasks(6)
        for t in tasks:
            sched.task_attach(t)
        assert sched.running_pids() == [t.pid for t in tasks]
        assert sched.runnable_pids() == []


class TestTimeSlice:
    """Slice accounting and preemption at schedule points / ticks."""

    def test_no_preempt_before_slice_expiry(self):
        sched, clock = make_sched()
        t1, t2 = make_tasks(2)
        sched.task_attach(t1)
        sched.task_attach(t2)
        clock.advance_us(SLICE_US - 10)
        assert not sched.check_preempt(t1)
        assert sched.running_pids() == [t1.pid]

    def test_preempt_at_slice_expiry_with_contention(self):
        sched, clock = make_sched()
        t1, t2 = make_tasks(2)
        sched.task_attach(t1)
        sched.task_attach(t2)
        clock.advance_us(SLICE_US + 10)
        assert sched.check_preempt(t1)
        assert sched.running_pids() == [t2.pid]
        assert t1.se.state == SCHED_RUNNABLE
        assert t1.rusage.nivcsw == 1

    def test_lone_task_is_never_preempted(self):
        sched, clock = make_sched()
        (t1,) = make_tasks(1)
        sched.task_attach(t1)
        clock.advance_us(50 * SLICE_US)
        assert not sched.check_preempt(t1)
        sched.tick()
        assert sched.running_pids() == [t1.pid]

    def test_tick_steals_expired_user_mode_holder(self):
        """The timer tick preempts a task running *user* code past its
        slice — it never entered the kernel, the slot is simply taken."""
        sched, clock = make_sched()
        t1, t2 = make_tasks(2)
        sched.task_attach(t1)
        sched.task_attach(t2)
        assert t1.se.depth == 0  # user mode
        clock.advance_us(SLICE_US + 1)
        sched.tick()
        assert sched.running_pids() == [t2.pid]

    def test_tick_never_steals_inside_a_syscall(self):
        """Tasks inside the kernel are non-preemptible; they yield at the
        next schedule point instead."""
        sched, clock = make_sched()
        t1, t2 = make_tasks(2)
        sched.task_attach(t1)
        t1.se.depth = 1  # inside a syscall
        sched.task_attach(t2)
        clock.advance_us(10 * SLICE_US)
        sched.tick()
        assert sched.running_pids() == [t1.pid]
        t1.se.depth = 0
        sched.tick()
        assert sched.running_pids() == [t2.pid]

    def test_blocked_task_consumes_zero_slice(self):
        """Blocking freezes vruntime and cpu_time: sleeping is free."""
        sched, clock = make_sched()
        t1, t2 = make_tasks(2)
        sched.task_attach(t1)
        sched.task_attach(t2)
        clock.advance_us(30)
        sched.task_block(t1)  # charged 30 us, then off-queue
        vrt0, cpu0 = t1.se.vruntime_ns, t1.se.cpu_time_ns
        clock.advance_us(100 * SLICE_US)  # t2 runs a long time
        sched.tick()
        assert t1.se.vruntime_ns == vrt0
        assert t1.se.cpu_time_ns == cpu0 == 30_000

    def test_slice_restarts_on_grant(self):
        sched, clock = make_sched()
        t1, t2 = make_tasks(2)
        sched.task_attach(t1)
        sched.task_attach(t2)
        clock.advance_us(SLICE_US + 1)
        sched.check_preempt(t1)      # t2 runs
        clock.advance_us(SLICE_US - 2)
        assert not sched.check_preempt(t2)  # fresh slice, not expired


class TestFairnessAndNice:
    def _share(self, nice_a, nice_b, rounds=400):
        """Closed-loop simulation: 1 CPU, 2 CPU-bound tasks, tick-driven
        preemption; returns (cpu_a, cpu_b)."""
        sched, clock = make_sched()
        ta, tb = make_tasks(2)
        ta.se.set_nice(nice_a)
        tb.se.set_nice(nice_b)
        sched.task_attach(ta)
        sched.task_attach(tb)
        for _ in range(rounds):
            clock.advance_us(SLICE_US)
            sched.tick()
        return ta.se.cpu_time_ns, tb.se.cpu_time_ns

    def test_equal_nice_fairness_within_10_percent(self):
        a, b = self._share(0, 0)
        assert max(a, b) / min(a, b) <= 1.1

    def test_nice_weight_fairness_within_10_percent(self):
        """nice 0 vs nice 5 must split the CPU by load weight (~3.05x)."""
        a, b = self._share(0, 5)
        expected = nice_to_weight(0) / nice_to_weight(5)
        assert a > b
        assert abs((a / b) - expected) / expected <= 0.10

    def test_weight_table_shape(self):
        assert nice_to_weight(0) == NICE_0_WEIGHT == 1024
        # each step is ~1.25x; ends are clamped
        assert nice_to_weight(-20) == nice_to_weight(-25) == 88761
        assert nice_to_weight(19) == nice_to_weight(40) == 15
        weights = [nice_to_weight(n) for n in range(-20, 20)]
        assert weights == sorted(weights, reverse=True)

    def test_set_nice_recharges_at_old_weight(self):
        """Time run before a nice change is charged at the old weight."""
        sched, clock = make_sched()
        (t1,) = make_tasks(1)
        sched.task_attach(t1)
        clock.advance_us(100)
        sched.set_nice(t1, 10)
        assert t1.se.vruntime_ns == 100_000  # charged 1:1 at nice 0
        assert t1.se.weight == nice_to_weight(10)


class TestYieldOrdering:
    def test_yield_passes_cpu_to_equal_vruntime_peer(self):
        sched, _ = make_sched()
        t1, t2 = make_tasks(2)
        sched.task_attach(t1)
        sched.task_attach(t2)
        sched.task_yield(t1)
        assert sched.running_pids() == [t2.pid]
        assert t1.se.state == SCHED_RUNNABLE

    def test_yield_alone_is_a_noop(self):
        sched, _ = make_sched()
        (t1,) = make_tasks(1)
        sched.task_attach(t1)
        vrt = t1.se.vruntime_ns
        sched.task_yield(t1)
        assert sched.running_pids() == [t1.pid]
        assert t1.se.vruntime_ns == vrt

    def test_yield_goes_behind_the_whole_queue_head(self):
        """After a yield the yielder's vruntime is bumped past the
        leftmost waiter, so it cannot immediately win the slot back."""
        sched, clock = make_sched()
        t1, t2, t3 = make_tasks(3)
        for t in (t1, t2, t3):
            sched.task_attach(t)
        sched.task_yield(t1)
        assert sched.running_pids() == [t2.pid]
        sched.task_block(t2)
        # t3 (still at vruntime 0) beats the yielder
        assert sched.running_pids() == [t3.pid]


class TestSpecParsing:
    def test_spec_strings(self):
        s = create_scheduler("cpus=1,slice_us=50")
        assert s.ncpus == 1 and s.slice_ns == 50_000
        s = create_scheduler("sched:cpus=2,slice_us=250")
        assert s.ncpus == 2 and s.slice_ns == 250_000
        assert create_scheduler("off").ncpus == 0
        assert create_scheduler(None, ncpus_default=7).ncpus == 7
        inst = Scheduler(ncpus=3)
        assert create_scheduler(inst) is inst

    def test_bad_specs_rejected(self):
        for bad in ("cpus=two", "slice_us=0", "warp=9", "slice_us=-5"):
            with pytest.raises(KernelError) as exc:
                create_scheduler(bad)
            assert exc.value.errno == EINVAL, bad

    def test_describe(self):
        assert Scheduler(ncpus=2, slice_us=50).describe() == \
            "sched:cpus=2,slice_us=50"


class TestKernelIntegration:
    """The scheduler threaded through real syscalls and blocking paths."""

    def test_default_kernel_schedules_on_its_cpus(self):
        kern = Kernel(ncpus=2)
        assert kern.sched.ncpus == 2
        proc = kern.create_process(["a"])
        kern.call(proc, "getpid")
        assert proc.pid in kern.sched.running_pids()

    def test_sched_spec_knob(self):
        kern = Kernel(sched="cpus=1,slice_us=50")
        assert kern.sched.ncpus == 1 and kern.sched.slice_ns == 50_000

    def test_same_thread_tasks_share_one_slot(self):
        """Driving two procs alternately from one thread on a 1-CPU
        kernel must not deadlock: the slot follows the thread."""
        kern = Kernel(sched="cpus=1,slice_us=50")
        a = kern.create_process(["a"])
        b = kern.create_process(["b"])
        for _ in range(10):
            assert kern.call(a, "getpid") == a.pid
            assert kern.call(b, "getpid") == b.pid
        assert b.rusage.nivcsw > 0 or a.rusage.nivcsw > 0

    def test_blocking_read_releases_the_cpu_slot(self):
        """A task blocked in-kernel must not pin its slot: another task
        gets the CPU, produces the data, and the sleeper resumes."""
        kern = Kernel(sched="cpus=1,slice_us=50")
        reader = kern.create_process(["reader"])
        writer = kern.create_process(["writer"])
        rfd, wfd = kern.call(reader, "pipe")
        wfile = reader.fdtable.get(wfd)
        got = {}

        def read_side():
            got["data"] = kern.call(reader, "read", rfd, 64)

        t = threading.Thread(target=read_side)
        t.start()
        time.sleep(0.05)  # reader is parked, slot must be free
        assert kern.call(writer, "getpid") == writer.pid
        kern.call(writer, "write", writer.fdtable.install(wfile), b"ping")
        t.join(timeout=5)
        assert not t.is_alive()
        assert got["data"] == b"ping"
        assert reader.rusage.nvcsw >= 1  # voluntary switch while blocked

    def test_contention_accrues_sched_wait_idle_does_not(self):
        idle = Kernel(sched="cpus=1,slice_us=50")
        p = idle.create_process(["probe"])
        for _ in range(20):
            idle.call(p, "getpid")
        assert idle.sched_wait_ns[p.tgid] == 0

        kern = Kernel(sched="cpus=1,slice_us=50")
        probe = kern.create_process(["probe"])
        with BackgroundSpinners(kern, n=2):
            deadline = time.monotonic() + 5.0
            while kern.sched_wait_ns[probe.tgid] == 0 and \
                    time.monotonic() < deadline:
                kern.call(probe, "nanosleep", 200_000)
                kern.call(probe, "getpid")
        assert kern.sched_wait_ns[probe.tgid] > 0

    def test_exit_detaches_from_the_scheduler(self):
        kern = Kernel()
        proc = kern.create_process(["gone"])
        kern.call(proc, "getpid")
        assert proc.pid in kern.sched.live_pids()
        kern.call(proc, "exit", 0)
        assert proc.pid not in kern.sched.live_pids()
        assert proc.se.state == SCHED_DEAD

    def test_nice_and_priority_syscalls(self):
        kern = Kernel()
        proc = kern.create_process(["nicer"])
        assert kern.call(proc, "nice", 5) == 0  # raw syscall returns 0
        assert proc.se.nice == 5
        assert proc.se.weight == nice_to_weight(5)
        assert kern.call(proc, "getpriority", 0, 0) == 15  # 20 - nice
        with pytest.raises(KernelError) as exc:
            kern.call(proc, "nice", -1)  # unprivileged raise
        assert exc.value.errno == EPERM
        with pytest.raises(KernelError) as exc:
            kern.call(proc, "setpriority", 0, proc.pid, 0)
        assert exc.value.errno == EPERM
        proc.euid = 0  # root may raise priority
        assert kern.call(proc, "setpriority", 0, proc.pid, -3) == 0
        assert proc.se.nice == -3
        with pytest.raises(KernelError) as exc:
            kern.call(proc, "setpriority", 0, 9999, 0)
        assert exc.value.errno == ESRCH
        # only PRIO_PROCESS is modeled; PRIO_PGRP/PRIO_USER would
        # misread `who`, so they are rejected loudly
        with pytest.raises(KernelError) as exc:
            kern.call(proc, "getpriority", 1, 0)
        assert exc.value.errno == EINVAL

    def test_affinity_lite_stores_and_validates(self):
        kern = Kernel(ncpus=4)
        proc = kern.create_process(["aff"])
        assert kern.call(proc, "sched_getaffinity", 0) == 0b1111
        assert kern.call(proc, "sched_setaffinity", 0, 0b0110) == 0
        assert kern.call(proc, "sched_getaffinity", 0) == 0b0110
        with pytest.raises(KernelError) as exc:
            kern.call(proc, "sched_setaffinity", 0, 0)
        assert exc.value.errno == EINVAL

    def test_sched_yield_under_contention_switches(self):
        kern = Kernel(sched="cpus=1,slice_us=50")
        a = kern.create_process(["a"])
        b = kern.create_process(["b"])
        kern.call(a, "getpid")
        kern.call(b, "getpid")
        n0 = a.rusage.nvcsw
        kern.call(a, "sched_yield")
        assert a.rusage.nvcsw >= n0  # voluntary switches recorded

    def test_wali_spec_exposes_nice(self):
        from repro.wali.spec import SYSCALLS

        assert "nice" in SYSCALLS
        assert SYSCALLS["nice"].import_name == "SYS_nice"

    def test_breakdown_reports_service_and_wait_columns(self):
        from repro.metrics import RuntimeBreakdown

        bd = RuntimeBreakdown("app", total_s=1.0, kernel_s=0.2,
                              wali_s=0.1, wait_s=0.3)
        assert bd.wait_pct == pytest.approx(30.0)
        assert bd.app_s == pytest.approx(0.4)
        row = bd.row()
        assert "kernel=" in row and "wait=" in row
        # percentages partition active time
        assert bd.app_pct + bd.kernel_pct + bd.wali_pct + bd.wait_pct == \
            pytest.approx(100.0)
