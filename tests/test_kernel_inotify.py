"""inotify subsystem tests: watch lifecycle, event generation from every
mutating VFS path, rename cookie pairing, bounded-queue overflow, wire
format, LT/ET delivery through epoll, uring POLL_ADD/READ on an inotify
fd, and the acceptance scenario — an inotify fd and a signalfd in one
epoll instance delivering ordered records through both ``epoll_pwait``
and ``io_uring_enter`` under scheduler contention."""

import struct
import threading
import time

import pytest

from repro.kernel import (
    EPOLL_CTL_ADD, EPOLLET, EPOLLIN, IN_ALL_EVENTS, IN_ATTRIB,
    IN_CLOSE_NOWRITE, IN_CLOSE_WRITE, IN_CREATE, IN_DELETE, IN_DELETE_SELF,
    IN_IGNORED, IN_ISDIR, IN_MASK_ADD, IN_MODIFY, IN_MOVE_SELF,
    IN_MOVED_FROM, IN_MOVED_TO, IN_NONBLOCK, IN_ONESHOT, IN_ONLYDIR,
    IN_Q_OVERFLOW, IORING_OP_POLL_ADD, IORING_OP_READ, Inotify, Kernel,
    KernelError, O_APPEND, O_CREAT, O_RDONLY, O_WRONLY, SIGUSR1, SQE,
    decode_events, decode_siginfo, sig_bit,
)
from repro.kernel.errno import EAGAIN, EBADF, EINVAL, ENOENT, ENOTDIR


@pytest.fixture
def kern():
    return Kernel()


@pytest.fixture
def proc(kern):
    return kern.create_process(["watch-test"])


def _setup(kern, proc, mask=IN_ALL_EVENTS, path="/tmp/d"):
    kern.call(proc, "mkdir", path, 0o755)
    ifd = kern.call(proc, "inotify_init1", IN_NONBLOCK)
    wd = kern.call(proc, "inotify_add_watch", ifd, path, mask)
    return ifd, wd


def _drain(kern, proc, ifd, nbytes=4096):
    return decode_events(kern.call(proc, "read", ifd, nbytes))


class TestWatchLifecycle:
    def test_init1_rejects_bad_flags(self, kern, proc):
        with pytest.raises(KernelError) as exc:
            kern.call(proc, "inotify_init1", 0x1234)
        assert exc.value.errno == EINVAL

    def test_add_watch_needs_inotify_fd(self, kern, proc):
        fd = kern.call(proc, "eventfd2", 0, 0)
        with pytest.raises(KernelError) as exc:
            kern.call(proc, "inotify_add_watch", fd, "/tmp", IN_CREATE)
        assert exc.value.errno == EINVAL
        with pytest.raises(KernelError) as exc:
            kern.call(proc, "inotify_add_watch", 404, "/tmp", IN_CREATE)
        assert exc.value.errno == EBADF

    def test_add_watch_missing_path(self, kern, proc):
        ifd = kern.call(proc, "inotify_init1", 0)
        with pytest.raises(KernelError) as exc:
            kern.call(proc, "inotify_add_watch", ifd, "/no/such", IN_CREATE)
        assert exc.value.errno == ENOENT

    def test_empty_mask_rejected(self, kern, proc):
        ifd = kern.call(proc, "inotify_init1", 0)
        with pytest.raises(KernelError) as exc:
            kern.call(proc, "inotify_add_watch", ifd, "/tmp", 0)
        assert exc.value.errno == EINVAL

    def test_onlydir_on_file(self, kern, proc):
        kern.vfs.write_file("/tmp/f", b"x")
        ifd = kern.call(proc, "inotify_init1", 0)
        with pytest.raises(KernelError) as exc:
            kern.call(proc, "inotify_add_watch", ifd, "/tmp/f",
                      IN_MODIFY | IN_ONLYDIR)
        assert exc.value.errno == ENOTDIR

    def test_same_inode_same_wd_mask_update(self, kern, proc):
        ifd, wd = _setup(kern, proc, IN_CREATE)
        # plain re-add replaces the mask; IN_MASK_ADD extends it
        assert kern.call(proc, "inotify_add_watch", ifd, "/tmp/d",
                         IN_DELETE) == wd
        kern.vfs.write_file("/tmp/d/a", b"")
        kern.call(proc, "unlink", "/tmp/d/a")
        evs = _drain(kern, proc, ifd)
        assert [(m & IN_ALL_EVENTS, n) for _, m, _, n in evs] == \
            [(IN_DELETE, "a")]  # creates masked out after the replace
        assert kern.call(proc, "inotify_add_watch", ifd, "/tmp/d",
                         IN_CREATE | IN_MASK_ADD) == wd
        kern.vfs.write_file("/tmp/d/b", b"")
        kern.call(proc, "unlink", "/tmp/d/b")
        evs = _drain(kern, proc, ifd)
        assert [(m & IN_ALL_EVENTS, n) for _, m, _, n in evs] == \
            [(IN_CREATE, "b"), (IN_DELETE, "b")]

    def test_rm_watch_queues_ignored_and_stops_events(self, kern, proc):
        ifd, wd = _setup(kern, proc)
        kern.call(proc, "inotify_rm_watch", ifd, wd)
        kern.vfs.write_file("/tmp/d/after", b"")
        evs = _drain(kern, proc, ifd)
        assert evs == [(wd, IN_IGNORED, 0, "")]
        with pytest.raises(KernelError) as exc:
            kern.call(proc, "inotify_rm_watch", ifd, wd)
        assert exc.value.errno == EINVAL

    def test_oneshot_fires_once_then_dies(self, kern, proc):
        ifd, wd = _setup(kern, proc, IN_CREATE | IN_ONESHOT)
        kern.vfs.write_file("/tmp/d/one", b"")
        kern.vfs.write_file("/tmp/d/two", b"")
        evs = _drain(kern, proc, ifd)
        assert [(w, m & (IN_ALL_EVENTS | IN_IGNORED), n)
                for w, m, _, n in evs] == \
            [(wd, IN_CREATE, "one"), (wd, IN_IGNORED, "")]

    def test_close_detaches_watches(self, kern, proc):
        ifd, wd = _setup(kern, proc)
        node = kern.vfs.lookup("/tmp/d")
        assert len(node.watches) == 1
        kern.call(proc, "close", ifd)
        assert node.watches == []


class TestEventGeneration:
    def test_namespace_events_carry_child_names(self, kern, proc):
        ifd, wd = _setup(kern, proc)
        fd = kern.call(proc, "open", "/tmp/d/f", O_CREAT | O_WRONLY)
        kern.call(proc, "close", fd)
        kern.call(proc, "mkdir", "/tmp/d/sub", 0o755)
        kern.call(proc, "symlink", "target", "/tmp/d/lnk")
        kern.call(proc, "link", "/tmp/d/f", "/tmp/d/hard")
        kern.call(proc, "rmdir", "/tmp/d/sub")
        evs = _drain(kern, proc, ifd)
        assert [(m, n) for _, m, _, n in evs] == [
            (IN_CREATE, "f"),
            # content events (here: the writable close) reach the parent
            # directory watch dnotify-style, carrying the child name
            (IN_CLOSE_WRITE, "f"),
            (IN_CREATE | IN_ISDIR, "sub"),
            (IN_CREATE, "lnk"),
            (IN_CREATE, "hard"),
            (IN_DELETE | IN_ISDIR, "sub"),
        ]

    def test_dir_watch_sees_child_content_events(self, kern, proc):
        # content events (modify/close/attrib) on a child are delivered
        # dnotify-style to the containing directory's watch, with the
        # child's name — watching a directory is enough to follow writes
        ifd, wd = _setup(kern, proc)
        fd = kern.call(proc, "open", "/tmp/d/f", O_CREAT | O_WRONLY)
        evs = _drain(kern, proc, ifd)   # discard the IN_CREATE
        kern.call(proc, "write", fd, b"x")
        kern.call(proc, "ftruncate", fd, 0)
        kern.call(proc, "close", fd)
        kern.call(proc, "chmod", "/tmp/d/f", 0o600)
        evs = _drain(kern, proc, ifd)
        # write+truncate coalesce into one IN_MODIFY (tail merge)
        assert [(m, n) for _, m, _, n in evs] == [
            (IN_MODIFY, "f"),
            (IN_CLOSE_WRITE, "f"),
            (IN_ATTRIB, "f"),
        ]
        assert all(w == wd for w, _, _, _ in evs)

    def test_file_watch_modify_truncate_close_attrib(self, kern, proc):
        kern.vfs.write_file("/tmp/log", b"")
        ifd = kern.call(proc, "inotify_init1", IN_NONBLOCK)
        wd = kern.call(proc, "inotify_add_watch", ifd, "/tmp/log",
                       IN_ALL_EVENTS)
        fd = kern.call(proc, "open", "/tmp/log", O_WRONLY | O_APPEND)
        kern.call(proc, "write", fd, b"entry\n")
        kern.call(proc, "ftruncate", fd, 2)
        kern.call(proc, "close", fd)
        rfd = kern.call(proc, "open", "/tmp/log", O_RDONLY)
        kern.call(proc, "close", rfd)
        kern.call(proc, "chmod", "/tmp/log", 0o600)
        evs = _drain(kern, proc, ifd)
        # the write's and the truncate's identical adjacent IN_MODIFY
        # records coalesce into one (inotify tail merge)
        assert [m for _, m, _, _ in evs] == [
            IN_MODIFY, IN_CLOSE_WRITE, IN_CLOSE_NOWRITE, IN_ATTRIB,
        ]
        assert all(w == wd for w, _, _, _ in evs)

    def test_delete_self_tears_down_the_watch(self, kern, proc):
        kern.vfs.write_file("/tmp/victim", b"x")
        ifd = kern.call(proc, "inotify_init1", IN_NONBLOCK)
        wd = kern.call(proc, "inotify_add_watch", ifd, "/tmp/victim",
                       IN_ALL_EVENTS)
        kern.call(proc, "unlink", "/tmp/victim")
        evs = _drain(kern, proc, ifd)
        assert [(w, m) for w, m, _, _ in evs] == \
            [(wd, IN_DELETE_SELF), (wd, IN_IGNORED)]
        with pytest.raises(KernelError):
            kern.call(proc, "inotify_rm_watch", ifd, wd)

    def test_hardlink_survivor_keeps_watch(self, kern, proc):
        kern.vfs.write_file("/tmp/orig", b"x")
        kern.call(proc, "link", "/tmp/orig", "/tmp/alias")
        ifd = kern.call(proc, "inotify_init1", IN_NONBLOCK)
        kern.call(proc, "inotify_add_watch", ifd, "/tmp/orig", IN_ALL_EVENTS)
        kern.call(proc, "unlink", "/tmp/orig")  # nlink 2 -> 1: no self-del
        with pytest.raises(KernelError) as exc:
            kern.call(proc, "read", ifd, 4096)
        assert exc.value.errno == EAGAIN
        kern.vfs.lookup("/tmp/alias").truncate(0)
        assert [m for _, m, _, _ in _drain(kern, proc, ifd)] == [IN_MODIFY]

    def test_watch_follows_the_inode_across_rename(self, kern, proc):
        kern.vfs.write_file("/tmp/a", b"x")
        ifd = kern.call(proc, "inotify_init1", IN_NONBLOCK)
        wd = kern.call(proc, "inotify_add_watch", ifd, "/tmp/a",
                       IN_MODIFY | IN_MOVE_SELF)
        kern.call(proc, "rename", "/tmp/a", "/tmp/b")
        fd = kern.call(proc, "open", "/tmp/b", O_WRONLY)
        kern.call(proc, "write", fd, b"y")
        evs = _drain(kern, proc, ifd)
        assert [(w, m) for w, m, _, _ in evs] == \
            [(wd, IN_MOVE_SELF), (wd, IN_MODIFY)]


class TestRenameCookies:
    def test_moved_from_to_share_a_nonzero_cookie(self, kern, proc):
        ifd, wd = _setup(kern, proc)
        kern.vfs.write_file("/tmp/d/old", b"x")
        kern.call(proc, "rename", "/tmp/d/old", "/tmp/d/new")
        evs = _drain(kern, proc, ifd)
        masks = [(m, n) for _, m, _, n in evs]
        assert masks == [(IN_CREATE, "old"), (IN_MOVED_FROM, "old"),
                         (IN_MOVED_TO, "new")]
        cookies = [c for _, m, c, _ in evs if m & (IN_MOVED_FROM |
                                                   IN_MOVED_TO)]
        assert cookies[0] == cookies[1] != 0

    def test_cross_directory_rename_pairs_two_watches(self, kern, proc):
        ifd, wd_src = _setup(kern, proc, path="/tmp/src")
        kern.call(proc, "mkdir", "/tmp/dst", 0o755)
        wd_dst = kern.call(proc, "inotify_add_watch", ifd, "/tmp/dst",
                           IN_ALL_EVENTS)
        kern.vfs.write_file("/tmp/src/f", b"x")
        kern.call(proc, "rename", "/tmp/src/f", "/tmp/dst/g")
        evs = _drain(kern, proc, ifd)
        moved = [(w, m, c, n) for w, m, c, n in evs
                 if m & (IN_MOVED_FROM | IN_MOVED_TO)]
        assert [(w, m, n) for w, m, c, n in moved] == [
            (wd_src, IN_MOVED_FROM, "f"), (wd_dst, IN_MOVED_TO, "g")]
        assert moved[0][2] == moved[1][2] != 0

    def test_rename_over_existing_tears_down_target_watch(self, kern, proc):
        """rename(A, B) with B existing destroys B's inode: its watchers
        get IN_DELETE_SELF + IN_IGNORED, exactly like unlink would."""
        kern.vfs.write_file("/tmp/a", b"new")
        kern.vfs.write_file("/tmp/b", b"old")
        ifd = kern.call(proc, "inotify_init1", IN_NONBLOCK)
        wd = kern.call(proc, "inotify_add_watch", ifd, "/tmp/b",
                       IN_ALL_EVENTS)
        kern.call(proc, "rename", "/tmp/a", "/tmp/b")
        evs = _drain(kern, proc, ifd)
        assert [(w, m) for w, m, _, _ in evs] == \
            [(wd, IN_DELETE_SELF), (wd, IN_IGNORED)]
        with pytest.raises(KernelError):
            kern.call(proc, "inotify_rm_watch", ifd, wd)

    def test_consecutive_renames_use_distinct_cookies(self, kern, proc):
        ifd, wd = _setup(kern, proc)
        kern.vfs.write_file("/tmp/d/a", b"")
        kern.call(proc, "rename", "/tmp/d/a", "/tmp/d/b")
        kern.call(proc, "rename", "/tmp/d/b", "/tmp/d/c")
        evs = _drain(kern, proc, ifd)
        cookies = [c for _, m, c, _ in evs if m & (IN_MOVED_FROM |
                                                   IN_MOVED_TO)]
        assert cookies[0] == cookies[1] != 0
        assert cookies[2] == cookies[3] != 0
        assert cookies[0] != cookies[2]


class TestQueueBoundAndCoalescing:
    def test_overflow_caps_queue_at_bound_plus_one(self, kern, proc):
        ifd, wd = _setup(kern, proc, IN_CREATE)
        ino = proc.fdtable.get(ifd).obj
        ino.max_queued = 4
        for i in range(10):
            kern.vfs.write_file(f"/tmp/d/f{i}", b"")
        assert len(ino.queue) == 5  # 4 events + 1 overflow marker
        assert ino.dropped == 6
        evs = _drain(kern, proc, ifd)
        assert [n for _, _, _, n in evs[:4]] == ["f0", "f1", "f2", "f3"]
        assert evs[4][0] == -1
        assert evs[4][1] & IN_Q_OVERFLOW
        # the queue drained: new events flow again
        kern.vfs.write_file("/tmp/d/fresh", b"")
        assert [n for _, _, _, n in _drain(kern, proc, ifd)] == ["fresh"]

    def test_only_one_overflow_marker_ever_queued(self):
        ino = Inotify(max_queued=2)

        class _Node:
            is_dir = False
            nlink = 1
            watches = None
        node = _Node()
        wd = ino.add_watch(node, IN_MODIFY)
        for i in range(8):
            # alternate names to defeat tail coalescing
            ino.publish(ino.watches[wd], IN_MODIFY, name=f"n{i % 2}")
        assert len(ino.queue) == 3
        assert sum(1 for e in ino.queue if e.mask & IN_Q_OVERFLOW) == 1

    def test_marker_mid_queue_is_not_duplicated(self):
        """A partial drain can leave the overflow marker at the head;
        refilling to the bound must not append a second marker."""
        ino = Inotify(max_queued=3)

        class _Node:
            is_dir = False
            nlink = 1
            watches = None
        wd = ino.add_watch(_Node(), IN_MODIFY)
        watch = ino.watches[wd]
        for i in range(4):  # fill past the bound: 3 events + marker
            ino.publish(watch, IN_MODIFY, name=f"a{i}")
        # drain exactly the 3 content records (16 hdr + 16 padded name
        # each); the 16-byte marker stays at the head
        ino.read_step(3 * 32)
        assert [e.mask & IN_Q_OVERFLOW for e in ino.queue] == \
            [IN_Q_OVERFLOW]
        for i in range(5):  # refill past the bound again
            ino.publish(watch, IN_MODIFY, name=f"b{i}")
        assert sum(1 for e in ino.queue if e.mask & IN_Q_OVERFLOW) == 1
        assert len(ino.queue) <= 3 + 1

    def test_identical_tail_events_coalesce(self, kern, proc):
        kern.vfs.write_file("/tmp/hot", b"")
        ifd = kern.call(proc, "inotify_init1", IN_NONBLOCK)
        kern.call(proc, "inotify_add_watch", ifd, "/tmp/hot", IN_MODIFY)
        node = kern.vfs.lookup("/tmp/hot")
        for _ in range(50):
            node.write_at(0, b"burst")
        evs = _drain(kern, proc, ifd)
        assert len(evs) == 1  # one IN_MODIFY, like inotify's tail merge
        assert evs[0][1] == IN_MODIFY


class TestReadSemantics:
    def test_read_empty_is_eagain(self, kern, proc):
        ifd, wd = _setup(kern, proc)
        with pytest.raises(KernelError) as exc:
            kern.call(proc, "read", ifd, 4096)
        assert exc.value.errno == EAGAIN

    def test_short_buffer_is_einval(self, kern, proc):
        ifd, wd = _setup(kern, proc)
        kern.vfs.write_file("/tmp/d/x", b"")
        with pytest.raises(KernelError) as exc:
            kern.call(proc, "read", ifd, 8)
        assert exc.value.errno == EINVAL

    def test_partial_drain_keeps_remaining_records(self, kern, proc):
        ifd, wd = _setup(kern, proc, IN_CREATE)
        kern.vfs.write_file("/tmp/d/a", b"")
        kern.vfs.write_file("/tmp/d/b", b"")
        # room for exactly one record (16 hdr + 16 padded name)
        first = decode_events(kern.call(proc, "read", ifd, 32))
        assert [n for _, _, _, n in first] == ["a"]
        second = decode_events(kern.call(proc, "read", ifd, 4096))
        assert [n for _, _, _, n in second] == ["b"]

    def test_wire_format_name_padding(self, kern, proc):
        ifd, wd = _setup(kern, proc, IN_CREATE)
        kern.vfs.write_file("/tmp/d/abcdefghijklmnop", b"")  # 16-char name
        data = kern.call(proc, "read", ifd, 4096)
        w, mask, cookie, nlen = struct.unpack_from("<iIII", data)
        assert (w, mask) == (wd, IN_CREATE)
        assert nlen == 32  # 16 chars + NUL, padded to a 16-byte multiple
        assert len(data) == 16 + 32
        assert data[16:].rstrip(b"\x00") == b"abcdefghijklmnop"

    def test_blocking_read_wakes_on_event(self, kern, proc):
        kern.call(proc, "mkdir", "/tmp/d", 0o755)
        ifd = kern.call(proc, "inotify_init1", 0)  # blocking
        kern.call(proc, "inotify_add_watch", ifd, "/tmp/d", IN_CREATE)

        def creator():
            time.sleep(0.05)
            kern.vfs.write_file("/tmp/d/late", b"")

        t = threading.Thread(target=creator)
        t.start()
        t0 = time.monotonic()
        evs = decode_events(kern.call(proc, "read", ifd, 4096))
        elapsed = time.monotonic() - t0
        t.join()
        assert [n for _, _, _, n in evs] == ["late"]
        assert elapsed < 1.0  # woke on the event, not a timeout slice


class TestEpollOverInotify:
    def test_level_triggered_until_drained(self, kern, proc):
        ifd, wd = _setup(kern, proc, IN_CREATE)
        ep = kern.call(proc, "epoll_create1", 0)
        kern.call(proc, "epoll_ctl", ep, EPOLL_CTL_ADD, ifd, EPOLLIN)
        assert kern.call(proc, "epoll_pwait", ep, 8,
                         timeout_ns=5_000_000) == []
        kern.vfs.write_file("/tmp/d/x", b"")
        assert kern.call(proc, "epoll_pwait", ep, 8,
                         timeout_ns=1_000_000_000) == [(ifd, EPOLLIN)]
        # LT: unread queue keeps reporting
        assert kern.call(proc, "epoll_pwait", ep, 8,
                         timeout_ns=1_000_000_000) == [(ifd, EPOLLIN)]
        _drain(kern, proc, ifd)
        assert kern.call(proc, "epoll_pwait", ep, 8,
                         timeout_ns=5_000_000) == []

    def test_edge_triggered_once_per_enqueue(self, kern, proc):
        ifd, wd = _setup(kern, proc, IN_CREATE)
        ep = kern.call(proc, "epoll_create1", 0)
        kern.call(proc, "epoll_ctl", ep, EPOLL_CTL_ADD, ifd,
                  EPOLLIN | EPOLLET)
        kern.vfs.write_file("/tmp/d/e1", b"")
        assert kern.call(proc, "epoll_pwait", ep, 8,
                         timeout_ns=1_000_000_000) == [(ifd, EPOLLIN)]
        # queued but no new edge: silent
        assert kern.call(proc, "epoll_pwait", ep, 8,
                         timeout_ns=5_000_000) == []
        kern.vfs.write_file("/tmp/d/e2", b"")
        assert kern.call(proc, "epoll_pwait", ep, 8,
                         timeout_ns=1_000_000_000) == [(ifd, EPOLLIN)]


class TestUringOverInotify:
    def _ring(self, kern, proc):
        return kern.call(proc, "io_uring_setup", 16)

    def test_poll_add_parks_until_event(self, kern, proc):
        ifd, wd = _setup(kern, proc, IN_CREATE)
        rfd = self._ring(kern, proc)
        submitted, cqes = kern.call(
            proc, "io_uring_enter", rfd,
            [SQE(IORING_OP_POLL_ADD, fd=ifd, off=EPOLLIN, user_data=7)])
        assert submitted == 1 and cqes == []  # parked: nothing queued yet
        kern.vfs.write_file("/tmp/d/hit", b"")
        _, cqes = kern.call(proc, "io_uring_enter", rfd, [], 1,
                            2_000_000_000)
        assert len(cqes) == 1
        assert cqes[0].user_data == 7
        assert cqes[0].res & EPOLLIN

    def test_ring_read_returns_wire_records(self, kern, proc):
        ifd, wd = _setup(kern, proc, IN_CREATE | IN_DELETE)
        rfd = self._ring(kern, proc)
        # park a READ first, then generate the events it completes with
        kern.call(proc, "io_uring_enter", rfd,
                  [SQE(IORING_OP_READ, fd=ifd, length=256, user_data=9)])
        kern.vfs.write_file("/tmp/d/r", b"")
        kern.call(proc, "unlink", "/tmp/d/r")
        _, cqes = kern.call(proc, "io_uring_enter", rfd, [], 1,
                            2_000_000_000)
        assert len(cqes) == 1 and cqes[0].user_data == 9
        evs = decode_events(cqes[0].data)
        # the parked READ completed on the first enqueue edge; it drains
        # whatever is queued at retry time — at least the IN_CREATE
        assert evs[0][1:] == (IN_CREATE, 0, "r")
        assert cqes[0].res == len(cqes[0].data) > 0


# the acceptance scenario runs twice: idle, and preempted every 50 us on
# a single CPU slot by two spinner guests
@pytest.fixture(params=[
    pytest.param(False, id="idle"),
    pytest.param(True, id="contended"),
])
def accept_kern(request):
    if not request.param:
        return Kernel()
    from repro.kernel import BackgroundSpinners

    k = Kernel(sched="cpus=1,slice_us=50")
    spinners = BackgroundSpinners(k, n=2).start()
    request.addfinalizer(spinners.stop)
    return k


class TestInotifyPlusSignalfdAcceptance:
    """One epoll instance over an inotify fd and a signalfd delivers
    correctly-ordered Linux-wire-format records through both epoll_pwait
    and io_uring_enter, idle and under scheduler contention.  Record
    contents are asserted exactly, so the CI 3x determinism rerun proves
    bit-reproducibility."""

    def _setup(self, kern):
        watcher = kern.create_process(["watcher"])
        kern.call(watcher, "mkdir", "/tmp/acc", 0o755)
        ifd = kern.call(watcher, "inotify_init1", IN_NONBLOCK)
        wd = kern.call(watcher, "inotify_add_watch", ifd, "/tmp/acc",
                       IN_CREATE | IN_DELETE | IN_MOVED_FROM | IN_MOVED_TO)
        watcher.blocked_mask = sig_bit(SIGUSR1)
        sfd = kern.call(watcher, "signalfd4", -1, sig_bit(SIGUSR1))
        ep = kern.call(watcher, "epoll_create1", 0)
        kern.call(watcher, "epoll_ctl", ep, EPOLL_CTL_ADD, ifd, EPOLLIN)
        kern.call(watcher, "epoll_ctl", ep, EPOLL_CTL_ADD, sfd, EPOLLIN)
        return watcher, ifd, wd, sfd, ep

    def _mutate(self, kern, watcher):
        """Filesystem churn then a SIGUSR1, from a second process."""
        mut = kern.create_process(["mutator"])
        kern.vfs.write_file("/tmp/acc/f", b"x")
        kern.call(mut, "rename", "/tmp/acc/f", "/tmp/acc/g")
        kern.call(mut, "unlink", "/tmp/acc/g")
        kern.call(mut, "kill", watcher.pid, SIGUSR1)
        return mut

    def _check_records(self, wd, inotify_bytes, siginfo_bytes, mut_pid):
        evs = decode_events(inotify_bytes)
        masks = [(w, m, n) for w, m, _, n in evs]
        assert masks == [
            (wd, IN_CREATE, "f"),
            (wd, IN_MOVED_FROM, "f"),
            (wd, IN_MOVED_TO, "g"),
            (wd, IN_DELETE, "g"),
        ]
        cookies = [c for _, m, c, _ in evs
                   if m & (IN_MOVED_FROM | IN_MOVED_TO)]
        assert cookies[0] == cookies[1] != 0
        signo, code, pid, uid = decode_siginfo(siginfo_bytes)
        assert (signo, code, pid) == (SIGUSR1, 0, mut_pid)

    def test_through_epoll_pwait(self, accept_kern):
        kern = accept_kern
        watcher, ifd, wd, sfd, ep = self._setup(kern)
        mut = self._mutate(kern, watcher)
        got_i = got_s = None
        deadline = time.monotonic() + 5
        while (got_i is None or got_s is None) and \
                time.monotonic() < deadline:
            for data, revents in kern.call(watcher, "epoll_pwait", ep, 8,
                                           timeout_ns=2_000_000_000):
                assert revents & EPOLLIN
                if data == ifd and got_i is None:
                    got_i = kern.call(watcher, "read", ifd, 4096)
                elif data == sfd and got_s is None:
                    got_s = kern.call(watcher, "read", sfd, 128)
        self._check_records(wd, got_i, got_s, mut.pid)

    def test_through_io_uring_enter(self, accept_kern):
        kern = accept_kern
        watcher, ifd, wd, sfd, ep = self._setup(kern)
        rfd = kern.call(watcher, "io_uring_setup", 8)
        # park READs on both readiness sources, then run the mutator;
        # one enter reaps both wire-format payloads
        kern.call(watcher, "io_uring_enter", rfd, [
            SQE(IORING_OP_READ, fd=ifd, length=4096, user_data=1),
            SQE(IORING_OP_READ, fd=sfd, length=128, user_data=2),
        ])
        mut = self._mutate(kern, watcher)
        got = {}
        deadline = time.monotonic() + 5
        while len(got) < 2 and time.monotonic() < deadline:
            _, cqes = kern.call(watcher, "io_uring_enter", rfd, [], 1,
                                2_000_000_000)
            for cqe in cqes:
                assert cqe.res > 0
                got[cqe.user_data] = cqe.data
        self._check_records(wd, got[1], got[2], mut.pid)


class TestWatchdGuest:
    """The watchd app end-to-end through WALI: inotify + signalfd + epoll
    (and the ring mode) inside the sandbox."""

    @pytest.mark.parametrize("mode", [[], ["-u"]], ids=["epoll", "ring"])
    def test_watchd_counts_everything(self, mode):
        from repro.apps import build
        from repro.wali import WaliRuntime

        rt = WaliRuntime()
        wp = rt.load(build("watchd"), argv=["watchd", "5"] + mode)
        assert wp.run() == 0
        assert (b"watchd ok lines=5 creates=5 moves=5 dels=5 sig=1"
                in rt.kernel.console_output())

    def test_watch_workload_builds(self):
        from repro.virt.workloads import watch_workload

        wl = watch_workload(scale=3)
        assert wl.app == "watchd" and wl.argv == ["watchd", "3"]
        assert watch_workload(scale=3, ring=True).argv == \
            ["watchd", "3", "-u"]
