"""Unit tests for the core Wasm engine: builder, validation, interpretation."""

import pytest

from repro.wasm import (
    I32, I64, F64, ModuleBuilder, Trap, TrapDivByZero, TrapIndirectCall,
    TrapIntegerOverflow, TrapOutOfBounds, TrapStackExhausted, TrapUnreachable,
    ValidationError, instantiate, validate_module,
)


def build_binop(op, ty=I32):
    mb = ModuleBuilder("t")
    f = mb.func("f", params=[ty, ty], results=[ty], export=True)
    f.local_get(0).local_get(1).op(op)
    f.end()
    return instantiate(mb.build())


class TestArithmeticI32:
    def test_add_wraps(self):
        inst = build_binop("i32.add")
        assert inst.invoke("f", 0xFFFFFFFF, 1) == 0

    def test_sub_wraps(self):
        inst = build_binop("i32.sub")
        assert inst.invoke("f", 0, 1) == 0xFFFFFFFF

    def test_mul(self):
        inst = build_binop("i32.mul")
        assert inst.invoke("f", 100000, 100000) == (100000 * 100000) & 0xFFFFFFFF

    def test_div_s_trunc_toward_zero(self):
        inst = build_binop("i32.div_s")
        assert inst.invoke("f", (-7) & 0xFFFFFFFF, 2) == (-3) & 0xFFFFFFFF

    def test_div_s_by_zero_traps(self):
        inst = build_binop("i32.div_s")
        with pytest.raises(TrapDivByZero):
            inst.invoke("f", 1, 0)

    def test_div_s_overflow_traps(self):
        inst = build_binop("i32.div_s")
        with pytest.raises(TrapIntegerOverflow):
            inst.invoke("f", 0x80000000, 0xFFFFFFFF)

    def test_div_u(self):
        inst = build_binop("i32.div_u")
        assert inst.invoke("f", 0xFFFFFFFF, 2) == 0x7FFFFFFF

    def test_rem_s_sign_follows_dividend(self):
        inst = build_binop("i32.rem_s")
        assert inst.invoke("f", (-7) & 0xFFFFFFFF, 2) == (-1) & 0xFFFFFFFF

    def test_rem_u_by_zero_traps(self):
        inst = build_binop("i32.rem_u")
        with pytest.raises(TrapDivByZero):
            inst.invoke("f", 5, 0)

    def test_shifts_mod_32(self):
        inst = build_binop("i32.shl")
        assert inst.invoke("f", 1, 33) == 2

    def test_shr_s_arithmetic(self):
        inst = build_binop("i32.shr_s")
        assert inst.invoke("f", 0x80000000, 1) == 0xC0000000

    def test_shr_u_logical(self):
        inst = build_binop("i32.shr_u")
        assert inst.invoke("f", 0x80000000, 1) == 0x40000000

    def test_rotl(self):
        inst = build_binop("i32.rotl")
        assert inst.invoke("f", 0x80000001, 1) == 0x00000003

    def test_rotr(self):
        inst = build_binop("i32.rotr")
        assert inst.invoke("f", 0x00000003, 1) == 0x80000001

    def test_comparison_signedness(self):
        lt_s = build_binop("i32.lt_s")
        lt_u = build_binop("i32.lt_u")
        neg1 = (-1) & 0xFFFFFFFF
        assert lt_s.invoke("f", neg1, 0) == 1
        assert lt_u.invoke("f", neg1, 0) == 0


class TestUnaryOps:
    def _unop(self, op, ty=I32):
        mb = ModuleBuilder("t")
        f = mb.func("f", params=[ty], results=[ty], export=True)
        f.local_get(0).op(op)
        f.end()
        return instantiate(mb.build())

    def test_clz(self):
        assert self._unop("i32.clz").invoke("f", 1) == 31
        assert self._unop("i32.clz").invoke("f", 0) == 32

    def test_ctz(self):
        assert self._unop("i32.ctz").invoke("f", 0x80000000) == 31
        assert self._unop("i32.ctz").invoke("f", 0) == 32

    def test_popcnt(self):
        assert self._unop("i32.popcnt").invoke("f", 0xF0F0) == 8

    def test_extend8_s(self):
        assert self._unop("i32.extend8_s").invoke("f", 0xFF) == 0xFFFFFFFF

    def test_i64_clz(self):
        assert self._unop("i64.clz", I64).invoke("f", 1) == 63


class TestConversions:
    def test_wrap(self):
        mb = ModuleBuilder("t")
        f = mb.func("f", params=[I64], results=[I32], export=True)
        f.local_get(0).op("i32.wrap_i64")
        f.end()
        assert instantiate(mb.build()).invoke("f", 0x1_0000_0005) == 5

    def test_extend_s(self):
        mb = ModuleBuilder("t")
        f = mb.func("f", params=[I32], results=[I64], export=True)
        f.local_get(0).op("i64.extend_i32_s")
        f.end()
        assert instantiate(mb.build()).invoke("f", 0xFFFFFFFF) == 0xFFFFFFFFFFFFFFFF

    def test_trunc_f64_traps_on_nan(self):
        mb = ModuleBuilder("t")
        f = mb.func("f", params=[F64], results=[I32], export=True)
        f.local_get(0).op("i32.trunc_f64_s")
        f.end()
        inst = instantiate(mb.build())
        assert inst.invoke("f", 3.9) == 3
        with pytest.raises(TrapIntegerOverflow):
            inst.invoke("f", float("nan"))
        with pytest.raises(TrapIntegerOverflow):
            inst.invoke("f", 1e20)

    def test_convert(self):
        mb = ModuleBuilder("t")
        f = mb.func("f", params=[I32], results=[F64], export=True)
        f.local_get(0).op("f64.convert_i32_s")
        f.end()
        assert instantiate(mb.build()).invoke("f", (-2) & 0xFFFFFFFF) == -2.0


class TestControlFlow:
    def test_block_br(self):
        mb = ModuleBuilder("t")
        f = mb.func("f", results=[I32], export=True)
        with f.block(I32):
            f.i32_const(42)
            f.br(0)
            f.i32_const(7)  # unreachable
        f.end()
        assert instantiate(mb.build()).invoke("f") == 42

    def test_loop_countdown(self):
        mb = ModuleBuilder("t")
        f = mb.func("f", params=[I32], results=[I32], export=True)
        acc = f.add_local(I32)
        with f.block():
            with f.loop():
                f.local_get(0)
                f.op("i32.eqz")
                f.br_if(1)
                f.local_get(acc).local_get(0).op("i32.add").local_set(acc)
                f.local_get(0).i32_const(1).op("i32.sub").local_set(0)
                f.br(0)
        f.local_get(acc)
        f.end()
        assert instantiate(mb.build()).invoke("f", 10) == 55

    def test_if_else(self):
        mb = ModuleBuilder("t")
        f = mb.func("f", params=[I32], results=[I32], export=True)
        f.local_get(0)
        with f.if_(I32):
            f.i32_const(1)
            f.else_()
            f.i32_const(2)
        f.end()
        inst = instantiate(mb.build())
        assert inst.invoke("f", 5) == 1
        assert inst.invoke("f", 0) == 2

    def test_if_without_else(self):
        mb = ModuleBuilder("t")
        f = mb.func("f", params=[I32], results=[I32], export=True)
        res = f.add_local(I32)
        f.i32_const(10).local_set(res)
        f.local_get(0)
        with f.if_():
            f.i32_const(20).local_set(res)
        f.local_get(res)
        f.end()
        inst = instantiate(mb.build())
        assert inst.invoke("f", 1) == 20
        assert inst.invoke("f", 0) == 10

    def test_br_table(self):
        mb = ModuleBuilder("t")
        f = mb.func("f", params=[I32], results=[I32], export=True)
        with f.block():          # depth 2 -> returns 100
            with f.block():      # depth 1 -> returns 200
                with f.block():  # depth 0 -> returns 300
                    f.local_get(0)
                    f.op("br_table", (0, 1), 2)
                f.i32_const(300)
                f.ret()
            f.i32_const(200)
            f.ret()
        f.i32_const(100)
        f.end()
        inst = instantiate(mb.build())
        assert inst.invoke("f", 0) == 300
        assert inst.invoke("f", 1) == 200
        assert inst.invoke("f", 2) == 100
        assert inst.invoke("f", 99) == 100  # clamps to default

    def test_early_return(self):
        mb = ModuleBuilder("t")
        f = mb.func("f", params=[I32], results=[I32], export=True)
        f.local_get(0)
        with f.if_():
            f.i32_const(1)
            f.ret()
        f.i32_const(2)
        f.end()
        inst = instantiate(mb.build())
        assert inst.invoke("f", 1) == 1
        assert inst.invoke("f", 0) == 2

    def test_nested_loops(self):
        # sum of i*j for i,j in [1,n]
        mb = ModuleBuilder("t")
        f = mb.func("f", params=[I32], results=[I32], export=True)
        i = f.add_local(I32)
        j = f.add_local(I32)
        acc = f.add_local(I32)
        f.i32_const(1).local_set(i)
        with f.block():
            with f.loop():
                f.local_get(i).local_get(0).op("i32.gt_s")
                f.br_if(1)
                f.i32_const(1).local_set(j)
                with f.block():
                    with f.loop():
                        f.local_get(j).local_get(0).op("i32.gt_s")
                        f.br_if(1)
                        f.local_get(acc)
                        f.local_get(i).local_get(j).op("i32.mul")
                        f.op("i32.add").local_set(acc)
                        f.local_get(j).i32_const(1).op("i32.add").local_set(j)
                        f.br(0)
                f.local_get(i).i32_const(1).op("i32.add").local_set(i)
                f.br(0)
        f.local_get(acc)
        f.end()
        assert instantiate(mb.build()).invoke("f", 4) == 100  # (1+2+3+4)^2

    def test_unreachable_traps(self):
        mb = ModuleBuilder("t")
        f = mb.func("f", export=True)
        f.op("unreachable")
        f.end()
        with pytest.raises(TrapUnreachable):
            instantiate(mb.build()).invoke("f")


class TestCalls:
    def test_direct_call(self):
        mb = ModuleBuilder("t")
        g = mb.func("double", params=[I32], results=[I32])
        g.local_get(0).i32_const(2).op("i32.mul")
        g.end()
        f = mb.func("f", params=[I32], results=[I32], export=True)
        f.local_get(0).call("double").call("double")
        f.end()
        assert instantiate(mb.build()).invoke("f", 3) == 12

    def test_recursion(self):
        mb = ModuleBuilder("t")
        f = mb.func("fib", params=[I32], results=[I32], export=True)
        f.local_get(0).i32_const(2).op("i32.lt_s")
        with f.if_(I32):
            f.local_get(0)
            f.else_()
            f.local_get(0).i32_const(1).op("i32.sub").call("fib")
            f.local_get(0).i32_const(2).op("i32.sub").call("fib")
            f.op("i32.add")
        f.end()
        assert instantiate(mb.build()).invoke("fib", 10) == 55

    def test_stack_exhaustion(self):
        mb = ModuleBuilder("t")
        f = mb.func("f", params=[I32], results=[I32], export=True)
        f.local_get(0).call("f")
        f.end()
        with pytest.raises(TrapStackExhausted):
            instantiate(mb.build()).invoke("f", 0)

    def test_host_call(self):
        mb = ModuleBuilder("t")
        mb.import_func("env", "add3", params=[I32], results=[I32])
        f = mb.func("f", params=[I32], results=[I32], export=True)
        f.local_get(0).call("add3")
        f.end()
        inst = instantiate(mb.build(), {"env": {"add3": lambda x: x + 3}})
        assert inst.invoke("f", 4) == 7

    def test_host_call_result_masked(self):
        mb = ModuleBuilder("t")
        mb.import_func("env", "big", results=[I32])
        f = mb.func("f", results=[I32], export=True)
        f.call("big")
        f.end()
        inst = instantiate(mb.build(), {"env": {"big": lambda: 2**40 + 9}})
        assert inst.invoke("f") == 9

    def test_call_indirect(self):
        mb = ModuleBuilder("t")
        a = mb.func("inc", params=[I32], results=[I32])
        a.local_get(0).i32_const(1).op("i32.add")
        a.end()
        b = mb.func("dec", params=[I32], results=[I32])
        b.local_get(0).i32_const(1).op("i32.sub")
        b.end()
        mb.add_elem(0, [mb.func_index("inc"), mb.func_index("dec")])
        f = mb.func("f", params=[I32, I32], results=[I32], export=True)
        f.local_get(1)       # argument
        f.local_get(0)       # table index
        f.call_indirect([I32], [I32])
        f.end()
        inst = instantiate(mb.build())
        assert inst.invoke("f", 0, 10) == 11
        assert inst.invoke("f", 1, 10) == 9

    def test_call_indirect_signature_mismatch_traps(self):
        # The paper's §4.1 porting observation: C programs calling through
        # incompatible function-pointer types trap at runtime.
        mb = ModuleBuilder("t")
        a = mb.func("two_args", params=[I32, I32], results=[I32])
        a.local_get(0).local_get(1).op("i32.add")
        a.end()
        mb.add_elem(0, [mb.func_index("two_args")])
        f = mb.func("f", results=[I32], export=True)
        f.i32_const(5)
        f.i32_const(0)
        f.call_indirect([I32], [I32])  # wrong signature
        f.end()
        with pytest.raises(TrapIndirectCall):
            instantiate(mb.build()).invoke("f")

    def test_call_indirect_null_entry_traps(self):
        mb = ModuleBuilder("t")
        mb.add_table(4)
        f = mb.func("f", results=[I32], export=True)
        f.i32_const(2)
        f.call_indirect([], [I32])
        f.end()
        with pytest.raises(TrapIndirectCall):
            instantiate(mb.build()).invoke("f")


class TestMemoryOps:
    def _inst(self):
        mb = ModuleBuilder("t")
        mb.add_memory(1, 4)
        st = mb.func("store", params=[I32, I32], export=True)
        st.local_get(0).local_get(1).i32_store()
        st.end()
        ld = mb.func("load", params=[I32], results=[I32], export=True)
        ld.local_get(0).i32_load()
        ld.end()
        ld8 = mb.func("load8s", params=[I32], results=[I32], export=True)
        ld8.local_get(0).op("i32.load8_s", 0, 0)
        ld8.end()
        grow = mb.func("grow", params=[I32], results=[I32], export=True)
        grow.local_get(0).op("memory.grow")
        grow.end()
        size = mb.func("size", results=[I32], export=True)
        size.op("memory.size")
        size.end()
        return instantiate(mb.build())

    def test_store_load(self):
        inst = self._inst()
        inst.invoke("store", 16, 0xDEADBEEF)
        assert inst.invoke("load", 16) == 0xDEADBEEF

    def test_load8_sign_extends(self):
        inst = self._inst()
        inst.invoke("store", 0, 0xFF)
        assert inst.invoke("load8s", 0) == 0xFFFFFFFF

    def test_oob_load_traps(self):
        inst = self._inst()
        with pytest.raises(TrapOutOfBounds):
            inst.invoke("load", 65536)

    def test_oob_partial_traps(self):
        inst = self._inst()
        with pytest.raises(TrapOutOfBounds):
            inst.invoke("load", 65534)  # 4-byte read crosses the boundary

    def test_grow_and_size(self):
        inst = self._inst()
        assert inst.invoke("size") == 1
        assert inst.invoke("grow", 2) == 1
        assert inst.invoke("size") == 3
        assert inst.invoke("load", 65536 * 2) == 0  # new pages are zero

    def test_grow_beyond_max_fails(self):
        inst = self._inst()
        assert inst.invoke("grow", 100) == 0xFFFFFFFF  # -1

    def test_memory_fill_copy(self):
        mb = ModuleBuilder("t")
        mb.add_memory(1)
        f = mb.func("f", results=[I32], export=True)
        f.i32_const(0).i32_const(0xAB).i32_const(8).op("memory.fill")
        f.i32_const(100).i32_const(0).i32_const(8).op("memory.copy")
        f.i32_const(104).i32_load()
        f.end()
        assert instantiate(mb.build()).invoke("f") == 0xABABABAB


class TestGlobalsAndData:
    def test_global_mutation(self):
        mb = ModuleBuilder("t")
        gi = mb.add_global(I32, 10)
        f = mb.func("bump", results=[I32], export=True)
        f.global_get(gi).i32_const(1).op("i32.add").global_set(gi)
        f.global_get(gi)
        f.end()
        inst = instantiate(mb.build())
        assert inst.invoke("bump") == 11
        assert inst.invoke("bump") == 12

    def test_data_segment(self):
        mb = ModuleBuilder("t")
        mb.add_memory(1)
        mb.add_data(8, b"hello")
        f = mb.func("f", results=[I32], export=True)
        f.i32_const(8).op("i32.load8_u", 0, 0)
        f.end()
        assert instantiate(mb.build()).invoke("f") == ord("h")

    def test_start_function_runs(self):
        mb = ModuleBuilder("t")
        gi = mb.add_global(I32, 0)
        s = mb.func("init")
        s.i32_const(99).global_set(gi)
        s.end()
        mb.set_start("init")
        g = mb.func("get", results=[I32], export=True)
        g.global_get(gi)
        g.end()
        assert instantiate(mb.build()).invoke("get") == 99


class TestValidation:
    def test_type_mismatch_rejected(self):
        mb = ModuleBuilder("t")
        f = mb.func("f", results=[I32], export=True)
        f.i64_const(1)  # wrong result type
        f.end()
        with pytest.raises(ValidationError):
            validate_module(mb.build())

    def test_stack_underflow_rejected(self):
        mb = ModuleBuilder("t")
        f = mb.func("f", results=[I32], export=True)
        f.op("i32.add")
        f.end()
        with pytest.raises(ValidationError):
            validate_module(mb.build())

    def test_bad_local_rejected(self):
        mb = ModuleBuilder("t")
        f = mb.func("f", results=[I32], export=True)
        f.local_get(3)
        f.end()
        with pytest.raises(ValidationError):
            validate_module(mb.build())

    def test_bad_branch_depth_rejected(self):
        mb = ModuleBuilder("t")
        f = mb.func("f", export=True)
        f.br(5)
        f.end()
        with pytest.raises(ValidationError):
            validate_module(mb.build())

    def test_values_left_on_stack_rejected(self):
        mb = ModuleBuilder("t")
        f = mb.func("f", export=True)
        f.i32_const(1)
        f.end()
        with pytest.raises(ValidationError):
            validate_module(mb.build())

    def test_memory_op_without_memory_rejected(self):
        mb = ModuleBuilder("t")
        f = mb.func("f", results=[I32], export=True)
        f.i32_const(0).i32_load()
        f.end()
        with pytest.raises(ValidationError):
            validate_module(mb.build())

    def test_immutable_global_set_rejected(self):
        mb = ModuleBuilder("t")
        gi = mb.add_global(I32, 1, mutable=False)
        f = mb.func("f", export=True)
        f.i32_const(2).global_set(gi)
        f.end()
        with pytest.raises(ValidationError):
            validate_module(mb.build())

    def test_unreachable_code_is_permissive(self):
        mb = ModuleBuilder("t")
        f = mb.func("f", results=[I32], export=True)
        f.i32_const(1)
        f.ret()
        f.op("i32.add")  # dead; polymorphic stack accepts it
        f.end()
        validate_module(mb.build())

    def test_duplicate_export_rejected(self):
        mb = ModuleBuilder("t")
        f = mb.func("f", export=True)
        f.end()
        mb.export_func("f")
        with pytest.raises(ValidationError):
            validate_module(mb.build())

    def test_select_type_mismatch_rejected(self):
        mb = ModuleBuilder("t")
        f = mb.func("f", results=[I32], export=True)
        f.i32_const(1).i64_const(2).i32_const(0).op("select")
        f.end()
        with pytest.raises(ValidationError):
            validate_module(mb.build())


class TestSafepoints:
    def _loop_module(self):
        mb = ModuleBuilder("t")
        f = mb.func("spin", params=[I32], export=True)
        with f.block():
            with f.loop():
                f.local_get(0).op("i32.eqz")
                f.br_if(1)
                f.local_get(0).i32_const(1).op("i32.sub").local_set(0)
                f.br(0)
        f.end()
        return mb.build()

    def test_loop_scheme_polls_each_iteration(self):
        inst = instantiate(self._loop_module(), scheme="loop")
        polls = []
        inst.machine.poll_hook = lambda: polls.append(1)
        inst.invoke("spin", 10)
        assert len(polls) == 11  # header executes n+1 times

    def test_func_scheme_polls_once(self):
        inst = instantiate(self._loop_module(), scheme="func")
        polls = []
        inst.machine.poll_hook = lambda: polls.append(1)
        inst.invoke("spin", 10)
        assert len(polls) == 1

    def test_none_scheme_never_polls(self):
        inst = instantiate(self._loop_module(), scheme="none")
        polls = []
        inst.machine.poll_hook = lambda: polls.append(1)
        inst.invoke("spin", 10)
        assert polls == []

    def test_all_scheme_polls_most(self):
        counts = {}
        for scheme in ("loop", "all"):
            inst = instantiate(self._loop_module(), scheme=scheme)
            polls = []
            inst.machine.poll_hook = lambda: polls.append(1)
            inst.invoke("spin", 10)
            counts[scheme] = len(polls)
        assert counts["all"] > 3 * counts["loop"]

    def test_fuel_limit(self):
        inst = instantiate(self._loop_module())
        inst.machine.fuel = 100
        with pytest.raises(Trap):
            inst.invoke("spin", 10**9)


class TestMachineClone:
    def test_clone_is_independent(self):
        mb = ModuleBuilder("t")
        mb.add_memory(1)
        gi = mb.add_global(I32, 5)
        f = mb.func("put", params=[I32, I32], export=True)
        f.local_get(0).local_get(1).i32_store()
        f.end()
        g = mb.func("get", params=[I32], results=[I32], export=True)
        g.local_get(0).i32_load()
        g.end()
        inst = instantiate(mb.build())
        inst.invoke("put", 0, 1)
        clone = inst.clone()
        inst.invoke("put", 0, 2)
        assert clone.invoke("get", 0) == 1
        assert inst.invoke("get", 0) == 2
