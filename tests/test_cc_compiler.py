"""mini-C compiler tests: language semantics, diagnostics, codegen."""

import pytest

from repro.cc import CompileError, compile_source
from repro.wali import WaliRuntime
from repro.wasm import instantiate


def run_f(source, *args, func="f"):
    mod = compile_source(source, name="t")
    return instantiate(mod).invoke(func, *args)


class TestExpressions:
    def test_precedence(self):
        assert run_f("export func f() -> i32 { return 2 + 3 * 4; }") == 14

    def test_parentheses(self):
        assert run_f("export func f() -> i32 { return (2 + 3) * 4; }") == 20

    def test_comparison_chains_via_logic(self):
        src = """
export func f(x: i32) -> i32 { return x > 1 && x < 10; }
"""
        assert run_f(src, 5) == 1
        assert run_f(src, 0) == 0
        assert run_f(src, 10) == 0

    def test_short_circuit_and(self):
        # right side would trap (div by zero) if evaluated
        src = """
export func f(x: i32) -> i32 { return x != 0 && 10 / x > 1; }
"""
        assert run_f(src, 0) == 0

    def test_short_circuit_or(self):
        src = """
global evals: i32 = 0;
func bump() -> i32 { evals = evals + 1; return 1; }
export func f() -> i32 {
    var r: i32 = 1 || bump();
    return evals;
}
"""
        assert run_f(src) == 0

    def test_unary_ops(self):
        assert run_f("export func f(x: i32) -> i32 { return -x; }",
                     5) == (-5) & 0xFFFFFFFF
        assert run_f("export func f(x: i32) -> i32 { return !x; }", 0) == 1

    def test_hex_and_char_literals(self):
        assert run_f("export func f() -> i32 { return 0xFF + 'A'; }") == \
            255 + 65

    def test_bitwise(self):
        assert run_f(
            "export func f() -> i32 { return (0xF0 | 0x0F) ^ 0xFF; }") == 0
        assert run_f("export func f() -> i32 { return 1 << 10; }") == 1024
        assert run_f("export func f() -> i32 { return -8 >> 1; }") == \
            (-4) & 0xFFFFFFFF

    def test_unsigned_builtins(self):
        assert run_f(
            "export func f() -> i32 { return shru(-8, 1); }") == 0x7FFFFFFC
        assert run_f("export func f() -> i32 { return ltu(-1, 0); }") == 0

    def test_i64_arithmetic(self):
        src = """
export func f() -> i32 {
    var big: i64 = i64(1000000) * i64(1000000);
    return i32(big % i64(1000003));
}
"""
        assert run_f(src) == (1000000 * 1000000) % 1000003

    def test_f64_arithmetic(self):
        src = """
export func f() -> i32 {
    var x: f64 = 2.0;
    return i32(sqrt(x) * 100.0);
}
"""
        assert run_f(src) == 141

    def test_casts(self):
        assert run_f(
            "export func f() -> i32 { return i32(i64(7)); }") == 7
        assert run_f(
            "export func f() -> i32 { return i32(3.99); }") == 3


class TestControlFlow:
    def test_nested_loops_with_break_continue(self):
        src = """
export func f(n: i32) -> i32 {
    var total: i32 = 0;
    var i: i32 = 0;
    while (i < n) {
        i = i + 1;
        if (i % 2 == 0) { continue; }
        var j: i32 = 0;
        while (1) {
            j = j + 1;
            if (j > i) { break; }
            total = total + 1;
        }
    }
    return total;
}
"""
        assert run_f(src, 5) == 1 + 3 + 5

    def test_else_if_chain(self):
        src = """
export func f(x: i32) -> i32 {
    if (x < 0) { return 1; }
    else if (x == 0) { return 2; }
    else if (x < 10) { return 3; }
    else { return 4; }
}
"""
        assert run_f(src, -1) == 1
        assert run_f(src, 0) == 2
        assert run_f(src, 5) == 3
        assert run_f(src, 50) == 4

    def test_recursion(self):
        src = """
export func f(n: i32) -> i32 {
    if (n <= 1) { return 1; }
    return n * f(n - 1);
}
"""
        assert run_f(src, 6) == 720

    def test_early_return_in_loop(self):
        src = """
export func f(n: i32) -> i32 {
    var i: i32 = 0;
    while (1) {
        if (i == n) { return i * 10; }
        i = i + 1;
    }
    return 0;
}
"""
        assert run_f(src, 4) == 40


class TestMemoryAndData:
    def test_buffers_and_loads(self):
        src = """
buffer buf[64];
export func f() -> i32 {
    store32(buf, 0xCAFE);
    store8(buf + 10, 200);
    return load32(buf) + load8u(buf + 10);
}
"""
        assert run_f(src) == 0xCAFE + 200

    def test_string_interning(self):
        src = """
export func f() -> i32 {
    // identical literals share one data-segment address
    return "abc" == "abc";
}
"""
        assert run_f(src) == 1

    def test_heap_base_past_data(self):
        src = """
buffer big[1000];
export func f() -> i32 { return __heap_base > big + 1000 - 16; }
"""
        assert run_f(src) == 1

    def test_globals(self):
        src = """
global counter: i32 = 10;
export func f() -> i32 {
    counter = counter + 5;
    return counter;
}
"""
        mod = compile_source(src, name="t")
        inst = instantiate(mod)
        assert inst.invoke("f") == 15
        assert inst.invoke("f") == 20

    def test_consts(self):
        src = """
const SIZE = 42;
export func f() -> i32 { return SIZE * 2; }
"""
        assert run_f(src) == 84

    def test_memcopy_memfill(self):
        src = """
buffer a[32];
buffer b[32];
export func f() -> i32 {
    memfill(a, 7, 16);
    memcopy(b, a, 16);
    return load8u(b + 15);
}
"""
        assert run_f(src) == 7


class TestFuncrefsAndICalls:
    def test_function_pointer_dispatch(self):
        src = """
func double(x: i32) -> i32 { return x * 2; }
func square(x: i32) -> i32 { return x * x; }
export func f(which: i32, x: i32) -> i32 {
    var fp: i32 = funcref(double);
    if (which) { fp = funcref(square); }
    return icall_i_i(fp, x);
}
"""
        assert run_f(src, 0, 9) == 18
        assert run_f(src, 1, 9) == 81

    def test_void_icall(self):
        src = """
global seen: i32 = 0;
func handler(sig: i32) { seen = sig; }
export func f() -> i32 {
    icall_v_i(funcref(handler), 42);
    return seen;
}
"""
        assert run_f(src) == 42

    def test_funcref_indices_skip_sig_tokens(self):
        # table slots 0/1 are reserved (SIG_DFL/SIG_IGN collision)
        src = """
func g() -> i32 { return 1; }
export func f() -> i32 { return funcref(g); }
"""
        assert run_f(src) >= 2


class TestDiagnostics:
    def test_type_mismatch(self):
        with pytest.raises(CompileError, match="type mismatch"):
            compile_source(
                "export func f() -> i32 { var x: i64 = i64(1); return x; }")

    def test_unknown_name(self):
        with pytest.raises(CompileError, match="unknown name"):
            compile_source("export func f() -> i32 { return nope; }")

    def test_unknown_function(self):
        with pytest.raises(CompileError, match="unknown function"):
            compile_source("export func f() -> i32 { return g(); }")

    def test_wrong_arity(self):
        with pytest.raises(CompileError, match="expects"):
            compile_source("""
func g(a: i32) -> i32 { return a; }
export func f() -> i32 { return g(1, 2); }
""")

    def test_break_outside_loop(self):
        with pytest.raises(CompileError, match="break outside"):
            compile_source("export func f() { break; }")

    def test_return_value_from_void(self):
        with pytest.raises(CompileError, match="void function"):
            compile_source("export func f() { return 1; }")

    def test_void_call_as_value(self):
        with pytest.raises(CompileError, match="used as a value"):
            compile_source("""
func g() { }
export func f() -> i32 { return g(); }
""")

    def test_duplicate_function(self):
        with pytest.raises(CompileError, match="duplicate"):
            compile_source("func f() { }\nfunc f() { }")

    def test_redeclared_local_with_other_type(self):
        with pytest.raises(CompileError, match="different type"):
            compile_source("""
export func f() {
    var x: i32 = 1;
    var x: i64 = i64(2);
}
""")

    def test_unterminated_string(self):
        with pytest.raises(CompileError, match="unterminated"):
            compile_source('export func f() { println("oops); }')

    def test_line_numbers_in_errors(self):
        with pytest.raises(CompileError, match="line 3"):
            compile_source("\n\nexport func f() -> i32 { return nope; }")


class TestLinking:
    def test_gc_strips_unused_functions(self):
        src = """
extern func SYS_write(fd: i32, buf: i32, n: i32) -> i64 from "wali";
extern func SYS_socket(f: i32, t: i32, p: i32) -> i64 from "wali";
func used() -> i32 { return i32(SYS_write(1, 0, 0)); }
func unused() -> i32 { return i32(SYS_socket(2, 1, 0)); }
export func f() -> i32 { return used(); }
"""
        mod = compile_source(src, name="t")
        names = {n for _, n in mod.import_names()}
        assert "SYS_write" in names
        assert "SYS_socket" not in names
        assert len(mod.funcs) == 2  # used + f

    def test_funcref_keeps_function_alive(self):
        src = """
func handler(x: i32) { }
export func f() -> i32 { return funcref(handler); }
"""
        mod = compile_source(src, name="t")
        assert len(mod.funcs) == 2

    def test_module_roundtrips_through_binary(self):
        from repro.wasm import decode_module, encode_module

        src = """
buffer data[16];
export func f(x: i32) -> i32 {
    store32(data, x);
    return load32(data) + 1;
}
"""
        mod = compile_source(src, name="t")
        mod2 = decode_module(encode_module(mod))
        assert instantiate(mod2).invoke("f", 41) == 42
