"""perf events: the sampling profiler, counting events, typed trace
payloads, flamegraph folding, writable /proc knobs, and the guest
``perf`` tool."""

import json
import struct
import threading
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.kernel import (
    AT_FDCWD, EPOLL_CTL_ADD, EPOLLIN, Kernel, KernelError, O_NONBLOCK,
    O_RDONLY, O_WRONLY, PERF_EVENT_IOC_DISABLE, PERF_EVENT_IOC_ENABLE,
    PERF_EVENT_IOC_RESET, PERF_RECORD_LOST, PERF_RECORD_SAMPLE,
    PERF_TYPE_COUNTER, PERF_TYPE_SAMPLING, PERF_TYPE_TRACEPOINT, PerfAttr,
    PerfRing, TRACE_SCHEMAS, decode_perf_records, decode_records,
    decode_typed_records,
)
from repro.kernel.perf import PERF_OPPORTUNITY_NS, encode_lost, encode_sample
from repro.metrics import (
    fold, frame_totals, from_samples, hottest_frames, perf_report_json,
    render_flamegraph, render_perf_report, total_samples, trace_report_dict,
    unfold,
)


@pytest.fixture
def k():
    kern = Kernel()
    yield kern
    kern.trace.close()


@pytest.fixture
def proc(k):
    return k.create_process(["t"], {})


def read_all(k, proc, path):
    fd = k.call(proc, "openat", AT_FDCWD, path, O_RDONLY, 0)
    out = b""
    while True:
        chunk = k.call(proc, "read", fd, 65536)
        if not chunk:
            break
        out += chunk
    k.call(proc, "close", fd)
    return out


def knob_write(k, proc, path, text):
    fd = k.call(proc, "openat", AT_FDCWD, path, O_WRONLY, 0)
    k.call(proc, "write", fd, text.encode())
    k.call(proc, "close", fd)


def knob_read(k, proc, path):
    fd = k.call(proc, "openat", AT_FDCWD, path, O_RDONLY, 0)
    data = k.call(proc, "read", fd, 256)
    k.call(proc, "close", fd)
    return data.decode()


# --------------------------------------------------------------------------
# the perf ring: wire format + overflow discipline (property-based)
# --------------------------------------------------------------------------

_frame = st.text(alphabet="abcdefgh_", min_size=1, max_size=10)
_stack = st.lists(_frame, min_size=0, max_size=6).map(tuple)


class TestPerfWire:
    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 2**62), st.integers(-1, 2**31 - 1),
           st.integers(-20, 19), st.integers(0, 2**62), _stack)
    def test_sample_roundtrip(self, t, pid, nice, vrt, frames):
        recs = decode_perf_records(encode_sample(t, pid, nice, vrt, frames))
        assert len(recs) == 1
        s = recs[0]
        assert (s.type, s.time_ns, s.pid, s.nice, s.vruntime_ns,
                s.frames) == (PERF_RECORD_SAMPLE, t, pid, nice, vrt, frames)
        assert not s.is_lost_marker

    def test_lost_roundtrip_and_trailing_partial(self):
        data = encode_lost(7) + encode_sample(1, 2, 0, 3, ("a",))
        recs = decode_perf_records(data + data + data[:5])  # torn tail
        assert [r.type for r in recs] == [PERF_RECORD_LOST,
                                          PERF_RECORD_SAMPLE,
                                          PERF_RECORD_LOST,
                                          PERF_RECORD_SAMPLE]
        assert recs[0].is_lost_marker and recs[0].lost == 7

    @settings(max_examples=50, deadline=None)
    @given(st.integers(1, 8), st.integers(0, 40))
    def test_ring_bound_and_single_marker(self, capacity, pushes):
        ring = PerfRing(capacity=capacity)
        for i in range(pushes):
            ring.push(encode_sample(i, 1, 0, 0, ("f",)))
        # content bound: capacity records + at most one lost marker
        assert len(ring) <= capacity + 1
        if pushes == 0:
            with pytest.raises(KernelError):
                ring.read_step(65536)
            return
        recs = decode_perf_records(ring.read_step(1 << 20))
        markers = [r for r in recs if r.is_lost_marker]
        kept = [r for r in recs if not r.is_lost_marker]
        assert len(markers) <= 1
        assert len(kept) == min(pushes, capacity)
        # conservation: kept + swallowed == pushed
        swallowed = markers[0].lost if markers else 0
        assert len(kept) + swallowed == pushes
        assert ring.lost == swallowed and ring.total == pushes

    def test_ring_read_whole_records_only(self):
        ring = PerfRing(capacity=8)
        rec = encode_sample(1, 1, 0, 0, ("alpha", "beta"))
        ring.push(rec)
        ring.push(rec)
        with pytest.raises(KernelError):  # EINVAL: can't hold one record
            ring.read_step(len(rec) - 1)
        out = ring.read_step(len(rec) + 3)  # room for one, not two
        assert len(out) == len(rec) and len(ring) == 1

    def test_marker_clears_on_drain(self):
        ring = PerfRing(capacity=1)
        for i in range(3):
            ring.push(encode_sample(i, 1, 0, 0, ()))
        ring.read_step(1 << 20)
        ring.push(encode_sample(9, 1, 0, 0, ()))
        recs = decode_perf_records(ring.read_step(1 << 20))
        assert len(recs) == 1 and not recs[0].is_lost_marker

    def test_poll_and_bad_capacity(self):
        with pytest.raises(KernelError):
            PerfRing(capacity=0)
        ring = PerfRing(capacity=2)
        assert ring.poll_events() == 0
        ring.push(encode_sample(0, 1, 0, 0, ()))
        assert ring.poll_events() == EPOLLIN


# --------------------------------------------------------------------------
# typed trace payloads (the tracepoint schema layer)
# --------------------------------------------------------------------------

def _schema_args(point):
    ranges = {"q": st.integers(-2**62, 2**62),
              "i": st.integers(-2**31, 2**31 - 1)}
    return st.tuples(*(ranges[fmt] for _, fmt in TRACE_SCHEMAS[point]))


class TestTypedPayloads:
    @settings(max_examples=60, deadline=None)
    @given(st.sampled_from(sorted(TRACE_SCHEMAS)), st.data())
    def test_payload_roundtrip(self, point, data):
        args = data.draw(_schema_args(point))
        from repro.kernel import KernelTrace
        t = KernelTrace()
        # mask to the one point: the wq_wake hook is process-global, so
        # guest threads from other tests must not land in this buffer
        t.set_mask({point})
        t.enable()
        t.payloads = True
        t.emit(point, pid=7, arg=1, info="x", args=args)
        recs = decode_typed_records(t.buffer.read_step(65536))
        t.close()
        assert len(recs) == 1 and recs[0].point == point
        expected = {name: value for (name, _), value
                    in zip(TRACE_SCHEMAS[point], args)}
        assert recs[0].payload == expected

    def test_payloads_off_by_default(self):
        from repro.kernel import KernelTrace
        t = KernelTrace()
        t.set_mask({"sched_switch"})
        t.enable()
        t.emit("sched_switch", pid=1, args=(1, 2, 0, 0))
        recs = decode_records(t.buffer.read_step(65536))
        t.close()
        assert len(recs) == 1  # no AUX continuation records

    def test_aux_records_are_plain_40_byte_rows(self):
        from repro.kernel import KernelTrace
        t = KernelTrace()
        t.control("payload=on\nmask=sched_switch\non\n")
        t.emit("sched_switch", pid=1, args=(10, 20, 0, 0))
        data = t.buffer.read_step(65536)
        t.close()
        assert len(data) % 40 == 0
        plain = decode_records(data)
        assert plain[0].point == "sched_switch"
        assert sum(1 for r in plain if r.point == "aux") >= 1
        typed = decode_typed_records(data)
        assert len(typed) == 1
        assert typed[0].payload == {"wait_ns": 10, "vruntime_ns": 20,
                                    "nice": 0, "cpu": 0}

    def test_kernel_syscall_exit_payload(self, k, proc):
        k.trace.control("payload=on\nmask=syscall_exit\non\n")
        k.call(proc, "getpid")
        k.trace.disable()
        recs = decode_typed_records(k.trace.buffer.read_step(65536))
        exits = [r for r in recs if r.point == "syscall_exit"
                 and r.info == "getpid"]
        assert exits and exits[0].payload is not None
        assert exits[0].payload["errno"] == 0
        assert exits[0].payload["service_ns"] >= 0

    def test_trace_format_self_describing(self, k, proc):
        text = read_all(k, proc, "/proc/trace_format").decode()
        assert "record: <QHHiq16s size 40" in text
        assert "payloads: off" in text
        for point, schema in TRACE_SCHEMAS.items():
            fields = " ".join(f"{n}:{f}" for n, f in schema)
            assert f"{point}: {fields}" in text
        k.trace.control("payload=on")
        assert "payloads: on" in read_all(
            k, proc, "/proc/trace_format").decode()


# --------------------------------------------------------------------------
# flamegraph folding (property-based) + perf report tables
# --------------------------------------------------------------------------

_folds = st.dictionaries(
    st.lists(_frame, min_size=1, max_size=5).map(tuple),
    st.integers(1, 10**6), max_size=12)


class TestFlamegraph:
    @settings(max_examples=80, deadline=None)
    @given(_folds)
    def test_fold_unfold_roundtrip(self, d):
        text = fold(d)
        assert unfold(text) == d
        # canonical text is a fixpoint: fold(unfold(x)) == x
        assert fold(unfold(text)) == text

    @settings(max_examples=80, deadline=None)
    @given(_folds)
    def test_counts_conserved(self, d):
        assert total_samples(unfold(fold(d))) == sum(d.values())

    def test_unfold_bare_record_lines(self):
        text = "a;b\na;b\na\n"
        assert unfold(text) == {("a", "b"): 2, ("a",): 1}

    def test_from_samples_skips_lost(self):
        recs = decode_perf_records(
            encode_sample(1, 1, 0, 0, ("m", "f")) + encode_lost(5)
            + encode_sample(2, 1, 0, 0, ("m", "f"))
            + encode_sample(3, 1, 0, 0, ()))
        f = from_samples(recs)
        assert f == {("m", "f"): 2, ("[unknown]",): 1}
        assert total_samples(f) == 3

    def test_render_and_report_shapes(self):
        f = unfold("main;serve;read 6\nmain;serve 3\nmain;idle 1\n")
        fg = render_flamegraph(f)
        assert "flamegraph: 10 samples" in fg
        assert fg.index("main") < fg.index("serve") < fg.index("read")
        report = render_perf_report(f)
        assert "top-down" in report and "bottom-up" in report
        assert hottest_frames(f)[0] == "read"

    def test_json_report_stable(self):
        f = unfold("b;c 2\na 1\n")
        j1, j2 = perf_report_json(f), perf_report_json(dict(reversed(
            list(f.items()))))
        assert j1 == j2  # insertion order does not leak into the report
        doc = json.loads(j1)
        assert list(doc) == ["total_samples", "stacks", "frames"]
        assert doc["total_samples"] == 3

    def test_perf_report_cli(self, tmp_path, capsys):
        from repro.metrics.perf_report import main
        p = tmp_path / "folded.txt"
        p.write_text("x;y 4\n")
        assert main([str(p)]) == 0
        assert "bottom-up" in capsys.readouterr().out
        assert main(["--json", str(p)]) == 0
        assert json.loads(capsys.readouterr().out)["total_samples"] == 4

    def test_trace_report_json(self, k, proc):
        k.call(proc, "getpid")
        doc = trace_report_dict(k.trace)
        assert any(row["syscall"] == "getpid" for row in doc["latency"])
        assert doc["counters"].get("sched.switch", 0) >= 1


# --------------------------------------------------------------------------
# perf_event_open: validation, counting events, ioctl discipline
# --------------------------------------------------------------------------

class TestPerfSyscall:
    def test_bad_attrs_einval(self, k, proc):
        for attr, pid, group in [
                (PerfAttr(type=99), 0, -1),                      # bad type
                (PerfAttr(type=PERF_TYPE_SAMPLING), 0, -1),      # freq 0
                (PerfAttr(type=PERF_TYPE_SAMPLING,
                          sample_freq=10**7), 0, -1),            # > max rate
                (PerfAttr(type=PERF_TYPE_COUNTER), 0, -1),       # no config
                (PerfAttr(type=PERF_TYPE_COUNTER, config="x"), -2, -1),
                (PerfAttr(type=PERF_TYPE_COUNTER, config="x"), 0, 5),
        ]:
            with pytest.raises(KernelError):
                k.call(proc, "perf_event_open", attr, pid, -1, group, 0)
        with pytest.raises(KernelError):  # unknown flag bits
            k.call(proc, "perf_event_open",
                   PerfAttr(type=PERF_TYPE_COUNTER, config="x"),
                   0, -1, -1, 0x40000)

    def test_counter_event_counts_and_resets(self, k, proc):
        attr = PerfAttr(type=PERF_TYPE_COUNTER, config="syscall.getpid")
        fd = k.call(proc, "perf_event_open", attr, 0, -1, -1, 0)
        k.call(proc, "ioctl", fd, PERF_EVENT_IOC_RESET, 0)
        for _ in range(5):
            k.call(proc, "getpid")
        val = struct.unpack("<q", k.call(proc, "read", fd, 8))[0]
        assert val == 5
        # reads do not consume: the counter is a level, not a stream
        assert struct.unpack("<q", k.call(proc, "read", fd, 8))[0] == 5
        k.call(proc, "ioctl", fd, PERF_EVENT_IOC_RESET, 0)
        for _ in range(3):
            k.call(proc, "getpid")
        assert struct.unpack("<q", k.call(proc, "read", fd, 8))[0] == 3
        k.call(proc, "ioctl", fd, PERF_EVENT_IOC_DISABLE, 0)
        k.call(proc, "getpid")
        assert struct.unpack("<q", k.call(proc, "read", fd, 8))[0] == 3
        k.call(proc, "ioctl", fd, PERF_EVENT_IOC_ENABLE, 0)
        k.call(proc, "getpid")
        assert struct.unpack("<q", k.call(proc, "read", fd, 8))[0] == 4
        k.call(proc, "close", fd)

    def test_tracepoint_event_without_tracing_on(self, k, proc):
        assert not k.trace.enabled  # probes fire below the enabled gate
        attr = PerfAttr(type=PERF_TYPE_TRACEPOINT, config="syscall_exit")
        fd = k.call(proc, "perf_event_open", attr, 0, -1, -1, 0)
        k.call(proc, "ioctl", fd, PERF_EVENT_IOC_RESET, 0)
        for _ in range(4):
            k.call(proc, "getpid")
        val = struct.unpack("<q", k.call(proc, "read", fd, 8))[0]
        assert val >= 4  # one exit per dispatch, at least
        k.call(proc, "close", fd)
        with pytest.raises(KernelError):  # unknown point name
            k.call(proc, "perf_event_open",
                   PerfAttr(type=PERF_TYPE_TRACEPOINT, config="bogus"),
                   0, -1, -1, 0)

    def test_sampling_deterministic_stream(self):
        """Two identical kernels produce byte-identical sample streams
        (the deterministic clock: one period = period_ns/1000 syscalls)."""
        def capture():
            k = Kernel()
            try:
                proc = k.create_process(["t"], {})
                attr = PerfAttr(type=PERF_TYPE_SAMPLING, sample_freq=1000,
                                ring_capacity=64)
                fd = k.call(proc, "perf_event_open", attr, 0, -1, -1, 0)
                for _ in range(5000):
                    k.call(proc, "getpid")
                return k.call(proc, "read", fd, 1 << 20)
            finally:
                k.trace.close()

        a, b = capture(), capture()
        assert a == b
        recs = decode_perf_records(a)
        # freq 1000 -> period 1 ms -> 1000 opportunities per sample
        assert len(recs) == 5
        assert recs[0].time_ns == 1000 * PERF_OPPORTUNITY_NS
        assert all(not r.is_lost_marker for r in recs)

    def test_sampling_overflow_lost_marker(self, k, proc):
        attr = PerfAttr(type=PERF_TYPE_SAMPLING, sample_freq=100_000,
                        ring_capacity=2)
        fd = k.call(proc, "perf_event_open", attr, 0, -1, -1, 0)
        for _ in range(100):   # period = 10 opportunities -> 10 samples
            k.call(proc, "getpid")
        recs = decode_perf_records(k.call(proc, "read", fd, 1 << 20))
        markers = [r for r in recs if r.is_lost_marker]
        kept = [r for r in recs if not r.is_lost_marker]
        assert len(kept) == 2 and len(markers) == 1
        assert markers[0].lost == 8

    def test_sampling_fd_epollable(self, k, proc):
        attr = PerfAttr(type=PERF_TYPE_SAMPLING, sample_freq=100_000,
                        ring_capacity=64)
        fd = k.call(proc, "perf_event_open", attr, 0, -1, -1, 0)
        ep = k.call(proc, "epoll_create1", 0)
        k.call(proc, "epoll_ctl", ep, EPOLL_CTL_ADD, fd, EPOLLIN, fd)
        for _ in range(20):
            k.call(proc, "getpid")
        events = k.call(proc, "epoll_pwait", ep, 8, 0)
        assert events and events[0][0] == fd and events[0][1] & EPOLLIN

    def test_ioctl_disable_stops_sampling(self, k, proc):
        attr = PerfAttr(type=PERF_TYPE_SAMPLING, sample_freq=100_000,
                        ring_capacity=64)
        fd = k.call(proc, "perf_event_open", attr, 0, -1, -1, 0)
        ep = k.call(proc, "epoll_create1", 0)
        k.call(proc, "epoll_ctl", ep, EPOLL_CTL_ADD, fd, EPOLLIN, fd)
        k.call(proc, "ioctl", fd, PERF_EVENT_IOC_DISABLE, 0)
        assert not k.perf.active
        for _ in range(50):
            k.call(proc, "getpid")
        assert k.call(proc, "epoll_pwait", ep, 8, 0) == []  # nothing sampled
        k.call(proc, "ioctl", fd, PERF_EVENT_IOC_ENABLE, 0)
        assert k.perf.active
        for _ in range(50):
            k.call(proc, "getpid")
        assert k.call(proc, "epoll_pwait", ep, 8, 0)
        assert decode_perf_records(k.call(proc, "read", fd, 1 << 20))

    def test_proc_perf_status(self, k, proc):
        attr = PerfAttr(type=PERF_TYPE_SAMPLING, sample_freq=997,
                        ring_capacity=16)
        k.call(proc, "perf_event_open", attr, -1, -1, -1, 0)
        text = read_all(k, proc, "/proc/perf").decode()
        assert "perf_event_max_sample_rate: 100000" in text
        assert "sampling_events: 1" in text and "active: 1" in text
        assert "freq_hz=997" in text and "scope=-1" in text


# --------------------------------------------------------------------------
# writable /proc knobs
# --------------------------------------------------------------------------

class TestKnobs:
    def test_perf_max_sample_rate_knob(self, k, proc):
        path = "/proc/sys/kernel/perf_event_max_sample_rate"
        assert knob_read(k, proc, path).strip() == "100000"
        knob_write(k, proc, path, "500\n")
        assert k.perf.max_sample_rate == 500
        with pytest.raises(KernelError):
            k.call(proc, "perf_event_open",
                   PerfAttr(type=PERF_TYPE_SAMPLING, sample_freq=997),
                   0, -1, -1, 0)
        # a zero-byte write is a no-op before it reaches the device
        for bad in ("frogs", "0", "-3", str(10**10)):
            with pytest.raises(KernelError):
                knob_write(k, proc, path, bad)
        assert k.perf.max_sample_rate == 500

    def test_wan_knobs_read_write(self):
        k = Kernel(net_backend="wan:latency_ms=5,loss=0.0")
        try:
            proc = k.create_process(["t"], {})
            assert knob_read(
                k, proc, "/proc/sys/net/wan/latency_ms").strip() == "5"
            knob_write(k, proc, "/proc/sys/net/wan/latency_ms", "12.5\n")
            assert k.net.latency_ns == 12_500_000
            knob_write(k, proc, "/proc/sys/net/wan/loss", "0.25")
            assert k.net.loss == 0.25
            knob_write(k, proc, "/proc/sys/net/wan/bw_kbps", "64")
            assert k.net.bw_kbps == 64
            for path, bad in [("/proc/sys/net/wan/loss", "1.5"),
                              ("/proc/sys/net/wan/reorder", "-0.1"),
                              ("/proc/sys/net/wan/jitter_ms", "nope")]:
                with pytest.raises(KernelError):
                    knob_write(k, proc, path, bad)
        finally:
            k.trace.close()

    def test_wan_knobs_absent_on_loopback(self, k, proc):
        with pytest.raises(KernelError):
            k.call(proc, "openat", AT_FDCWD, "/proc/sys/net/wan/loss",
                   O_RDONLY, 0)


# --------------------------------------------------------------------------
# exact stacks from a known-shape guest
# --------------------------------------------------------------------------

_SHAPE_SOURCE = r"""
extern func SYS_getpid() -> i64 from "wali";

func lvl3() {
    var i: i32 = 0;
    while (i < 3000) { SYS_getpid(); i = i + 1; }
}
func lvl2() { lvl3(); }
func lvl1() { lvl2(); }
export func _start() { lvl1(); }
"""


class TestGuestStacks:
    def _capture(self):
        from repro.cc import compile_source
        from repro.wali import WaliRuntime

        rt = WaliRuntime()
        module = compile_source(_SHAPE_SOURCE, name="shape")
        wp = rt.load(module, argv=["shape"])
        attr = PerfAttr(type=PERF_TYPE_SAMPLING, sample_freq=1000,
                        ring_capacity=64)
        event = rt.kernel.perf.open_event(wp.proc, attr, wp.proc.pid,
                                          -1, -1, 0)
        assert wp.run() == 0
        data = event.ring.read_step(1 << 20)
        event.close()
        rt.kernel.trace.close()
        return data

    def test_exact_known_shape_stack(self):
        recs = decode_perf_records(self._capture())
        assert len(recs) >= 2
        for r in recs:
            assert r.frames == ("_start", "lvl1", "lvl2", "lvl3")
            assert not r.is_lost_marker
        f = from_samples(recs)
        assert list(f) == [("_start", "lvl1", "lvl2", "lvl3")]

    def test_capture_deterministic_across_runs(self):
        assert self._capture() == self._capture()

    def test_name_section_roundtrip(self):
        from repro.cc import compile_source
        from repro.wasm import decode_module, encode_module

        m = compile_source(_SHAPE_SOURCE, name="shape")
        m2 = decode_module(encode_module(m))
        assert [f.name for f in m2.funcs] == [f.name for f in m.funcs]
        assert "lvl3" in [f.name for f in m2.funcs]

    def test_instructions_event_on_guest(self):
        from repro.cc import compile_source
        from repro.wali import WaliRuntime

        rt = WaliRuntime()
        module = compile_source(_SHAPE_SOURCE, name="shape")
        wp = rt.load(module, argv=["shape"])
        attr = PerfAttr(type=PERF_TYPE_COUNTER, config="instructions")
        event = rt.kernel.perf.open_event(wp.proc, attr, wp.proc.pid,
                                          -1, -1, 0)
        assert event.value() == 0
        assert wp.run() == 0
        assert event.value() > 3000  # at least one op per loop iteration
        rt.kernel.trace.close()


# --------------------------------------------------------------------------
# the guest perf tool
# --------------------------------------------------------------------------

class TestPerfGuestTool:
    def test_perf_stat_counts_exactly(self):
        from repro.apps import build
        from repro.wali import WaliRuntime

        rt = WaliRuntime()
        assert rt.run(build("perf"),
                      argv=["perf", "stat", "syscall.getpid", "200"]) == 0
        out = rt.kernel.console_output()
        assert b"perf stat syscall.getpid: 200" in out
        rt.kernel.trace.close()

    def test_perf_stat_tracepoint(self):
        from repro.apps import build
        from repro.wali import WaliRuntime

        rt = WaliRuntime()
        assert rt.run(build("perf"),
                      argv=["perf", "stat", "tracepoint:syscall_exit",
                            "50"]) == 0
        out = rt.kernel.console_output().decode()
        count = int(out.split("perf stat syscall_exit: ")[1].split()[0])
        assert count >= 50
        rt.kernel.trace.close()

    def test_perf_record_self_profile(self):
        from repro.apps import build
        from repro.wali import WaliRuntime

        rt = WaliRuntime()
        rt.install_binary("/bin/perf.wasm", build("perf"))
        assert rt.run("/bin/perf.wasm",
                      argv=["perf", "record", "100000", "10", "0"]) == 0
        out = rt.kernel.console_output().decode()
        folded = [ln for ln in out.splitlines() if ";" in ln]
        assert len(folded) == 10
        # binfmt round trip kept real function names for every frame
        for ln in folded:
            assert ln.startswith("_start;do_record")
            assert "?" not in ln
        assert "perf: 10 samples lost=0" in out
        rt.kernel.trace.close()

    def test_perf_report_aggregates(self):
        from repro.apps import build
        from repro.wali import WaliRuntime

        rt = WaliRuntime()
        assert rt.run(build("perf"),
                      argv=["perf", "report", "100000", "8", "0"]) == 0
        out = rt.kernel.console_output().decode()
        agg = [ln for ln in out.splitlines()
               if ";" in ln and ln.rsplit(" ", 1)[-1].isdigit()]
        assert agg
        assert sum(int(ln.rsplit(" ", 1)[1]) for ln in agg) == 8
        assert "perf: 8 samples" in out
        rt.kernel.trace.close()


# --------------------------------------------------------------------------
# acceptance: profiling the memcached echo serving loop from inside
# --------------------------------------------------------------------------

class TestMemcachedProfile:
    def test_record_hottest_frames_are_serving_loop(self):
        from repro.apps import build
        from repro.wali import WaliRuntime

        rt = WaliRuntime()
        # event-loop mode: one pid owns the whole serving loop
        server = rt.load(build("mini_memcached"),
                         argv=["memcached", "11211", "-e"])
        server.start_in_thread()
        for _ in range(500):
            if b"ready" in rt.kernel.console_output():
                break
            time.sleep(0.01)
        profiler = rt.load(
            build("perf"),
            argv=["perf", "record", "100000", "8",
                  str(server.proc.pid)])
        profiler.start_in_thread()
        client = rt.load(build("memcached_client"),
                         argv=["client", "11211", "40", "1"])
        assert client.run() == 0
        profiler.join(15)
        assert profiler.exit_status == 0

        out = rt.kernel.console_output().decode()
        folded = [ln for ln in out.splitlines() if ";" in ln
                  and ": " not in ln]
        assert folded, out
        profile = unfold("\n".join(folded))
        # every sampled stack is the serving loop, symbolized end to end
        serving = {"ev_serve", "ev_conn", "handle_line", "reply"}
        for stack in profile:
            assert stack[0] == "_start", stack
            assert "?" not in stack, stack
            assert serving & set(stack), stack
        # the serving loop owns 100% of inclusive samples, and the
        # hottest stack runs through it (its leaves are the libc
        # read/epoll wrappers the loop parks in — exactly what a real
        # profile of an event server looks like)
        assert frame_totals(profile)["ev_serve"][0] == \
            total_samples(profile)
        hot_stack = max(profile, key=profile.get)
        assert serving & set(hot_stack), hot_stack
        fg = render_flamegraph(profile)
        assert "ev_serve" in fg
        rt.kernel.trace.close()
