"""WAZI tests: the §5 recipe applied to Zephyr — auto-generated interface,
device access, flash fs, and an embedded guest application."""

import pytest

from repro.cc import compile_source
from repro.wazi import (
    SYSCALL_ENCODING, WaziRuntime, ZephyrError, ZephyrKernel, wasm_signature,
)

WAZI_EXTERNS = r"""
extern func k_uptime_get() -> i64 from "wazi";
extern func k_sleep(ms: i32) -> i32 from "wazi";
extern func k_yield() -> i32 from "wazi";
extern func console_write(buf: i32, len: i32) -> i32 from "wazi";
extern func fs_open(name: i32, flags: i32) -> i32 from "wazi";
extern func fs_read(fd: i32, buf: i32, len: i32) -> i32 from "wazi";
extern func fs_write(fd: i32, buf: i32, len: i32) -> i32 from "wazi";
extern func fs_close(fd: i32) -> i32 from "wazi";
extern func fs_size(name: i32) -> i32 from "wazi";
extern func device_get_binding(name: i32) -> i32 from "wazi";
extern func gpio_pin_configure(dev: i32, dir: i32) -> i32 from "wazi";
extern func gpio_pin_set(dev: i32, value: i32) -> i32 from "wazi";
extern func gpio_pin_get(dev: i32) -> i32 from "wazi";
extern func sensor_sample_fetch(dev: i32) -> i32 from "wazi";
extern func sensor_channel_get(dev: i32, ch: i32) -> i32 from "wazi";

func wstrlen(s: i32) -> i32 {
    var n: i32 = 0;
    while (load8u(s + n) != 0) { n = n + 1; }
    return n;
}

func printk(s: i32) { console_write(s, wstrlen(s)); }

buffer numtmp[16];
func print_num(v: i32) {
    var p: i32 = numtmp;
    if (v < 0) { store8(p, '-'); p = p + 1; v = 0 - v; }
    if (v == 0) { store8(p, '0'); store8(p + 1, 0); printk(numtmp); return; }
    var n: i32 = 0;
    var t: i32 = v;
    while (t > 0) { n = n + 1; t = t / 10; }
    store8(p + n, 0);
    var i: i32 = n - 1;
    while (v > 0) { store8(p + i, '0' + v % 10); v = v / 10; i = i - 1; }
    printk(numtmp);
}
"""


class TestZephyrKernel:
    def test_uptime_monotonic(self):
        z = ZephyrKernel()
        a = z.k_uptime_get()
        b = z.k_uptime_get()
        assert b >= a >= 0

    def test_flash_fs_roundtrip(self):
        z = ZephyrKernel()
        fd = z.fs_open("log.txt", 0x10)
        z.fs_write(fd, b"hello zephyr")
        z.fs_seek(fd, 0)
        assert z.fs_read(fd, 64) == b"hello zephyr"
        z.fs_close(fd)
        assert z.fs_size("log.txt") == 12

    def test_flash_capacity_enospc(self):
        z = ZephyrKernel()
        z.fs.capacity = 16
        fd = z.fs_open("big", 0x10)
        with pytest.raises(ZephyrError) as ei:
            z.fs_write(fd, b"x" * 64)
        assert ei.value.errno == 28

    def test_missing_file_enoent(self):
        z = ZephyrKernel()
        with pytest.raises(ZephyrError):
            z.fs_open("absent", 0)

    def test_gpio_toggle_counting(self):
        z = ZephyrKernel()
        h = z.device_get_binding("GPIO_0")
        z.gpio_pin_configure(h, 1)
        z.gpio_pin_set(h, 1)
        z.gpio_pin_set(h, 0)
        z.gpio_pin_set(h, 0)  # no toggle
        pin = z._device_by_handle(h).obj
        assert pin.toggles == 2

    def test_sensor_deterministic(self):
        z1, z2 = ZephyrKernel(), ZephyrKernel()
        h1 = z1.device_get_binding("TEMP_0")
        h2 = z2.device_get_binding("TEMP_0")
        z1.sensor_sample_fetch(h1)
        z2.sensor_sample_fetch(h2)
        assert z1.sensor_channel_get(h1, 0) == z2.sensor_channel_get(h2, 0)

    def test_unknown_device_handle_zero(self):
        z = ZephyrKernel()
        assert z.device_get_binding("NOPE") == 0


class TestInterfaceGeneration:
    def test_every_syscall_is_generated(self):
        rt = WaziRuntime()
        ns = rt.imports()["wazi"]
        assert len(ns) == len(SYSCALL_ENCODING)
        for hostfunc in ns.values():
            assert getattr(hostfunc.fn, "auto_generated", False)

    def test_full_surface_auto_generated(self):
        assert WaziRuntime.auto_generated_fraction() == 1.0

    def test_signatures_expand_buffers(self):
        ft = wasm_signature(["int", "buf_in"], "int")
        assert len(ft.params) == 3  # int + (ptr, len)

    def test_errno_passthrough(self):
        rt = WaziRuntime()
        src = WAZI_EXTERNS + r"""
export func _start() {
    var fd: i32 = fs_open("missing", 0);
    if (fd == -2) { printk("ENOENT"); }  // -ENOENT crosses the boundary
}
"""
        rt.run(compile_source(src, name="err"))
        assert rt.console_output() == b"ENOENT"


class TestGuestApps:
    def test_hello_zephyr(self):
        rt = WaziRuntime()
        src = WAZI_EXTERNS + r"""
export func _start() {
    printk("*** Booting WAZI guest ***\n");
    printk("uptime_ms=");
    print_num(i32(k_uptime_get()));
    printk("\n");
}
"""
        assert rt.run(compile_source(src, name="hello")) == 0
        out = rt.console_output()
        assert b"Booting WAZI guest" in out

    def test_sensor_logger_end_to_end(self):
        """The paper's 'Lua on a microcontroller' analog: a guest samples a
        sensor, logs readings to flash, and reports statistics."""
        rt = WaziRuntime()
        src = WAZI_EXTERNS + r"""
buffer rec[32];

export func _start() {
    var temp: i32 = device_get_binding("TEMP_0");
    var led: i32 = device_get_binding("GPIO_0");
    gpio_pin_configure(led, 1);
    var log_fd: i32 = fs_open("samples.bin", 0x10);
    var total: i32 = 0;
    var peak: i32 = 0;
    var i: i32 = 0;
    while (i < 10) {
        sensor_sample_fetch(temp);
        var milli: i32 = sensor_channel_get(temp, 0);
        total = total + milli;
        if (milli > peak) { peak = milli; }
        store32(rec, i);
        store32(rec + 4, milli);
        fs_write(log_fd, rec, 8);
        gpio_pin_set(led, i % 2);   // blinky
        k_yield();
        i = i + 1;
    }
    fs_close(log_fd);
    printk("samples=10 avg_milli=");
    print_num(total / 10);
    printk(" peak=");
    print_num(peak);
    printk("\n");
}
"""
        status = rt.run(compile_source(src, name="logger"))
        assert status == 0
        out = rt.console_output().decode()
        assert out.startswith("samples=10 avg_milli=2")
        assert rt.kernel.fs_size("samples.bin") == 80
        led = rt.kernel.devices["GPIO_0"].obj
        assert led.toggles >= 8
        # every interaction was a traced, auto-generated WAZI call
        assert rt.kernel.syscall_counts["sensor_sample_fetch"] == 10
        assert rt.kernel.syscall_counts["fs_write"] == 10

    def test_script_interpreter_on_zephyr(self):
        """Run a computation loop on WAZI — the interpreter-on-RTOS demo."""
        rt = WaziRuntime()
        fd = rt.kernel.fs_open("prog.cal", 0x10)
        rt.kernel.fs_write(fd, b"40")
        rt.kernel.fs_close(fd)
        src = WAZI_EXTERNS + r"""
buffer script[64];

func watoi(s: i32) -> i32 {
    var v: i32 = 0;
    var i: i32 = 0;
    while (load8u(s + i) >= '0' && load8u(s + i) <= '9') {
        v = v * 10 + (load8u(s + i) - '0');
        i = i + 1;
    }
    return v;
}

export func _start() {
    var fd: i32 = fs_open("prog.cal", 0);
    var n: i32 = fs_read(fd, script, 63);
    store8(script + n, 0);
    fs_close(fd);
    var limit: i32 = watoi(script);
    // iterative fibonacci, like the paper's Lua deployment demo
    var a: i32 = 0;
    var b: i32 = 1;
    var i: i32 = 0;
    while (i < limit) {
        var c: i32 = a + b;
        a = b;
        b = c;
        i = i + 1;
    }
    printk("fib=");
    print_num(a);
    printk("\n");
}
"""
        assert rt.run(compile_source(src, name="calc")) == 0
        assert rt.console_output() == b"fib=102334155\n"
