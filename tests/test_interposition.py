"""Syscall interposition tests (§6): logging, restriction, fault injection
layered over the name-bound WALI interface without touching guests."""

import pytest

from repro.apps import with_libc
from repro.cc import compile_source
from repro.kernel.errno import EIO, ENOSPC
from repro.wali import FaultInjector, SecurityPolicy, SyscallLogger, \
    WaliRuntime

GUEST = with_libc(r"""
export func _start() {
    var fd: i32 = open("/tmp/f", O_CREAT | O_RDWR, 0x1b4);
    var ok: i32 = 0;
    var failed: i32 = 0;
    var i: i32 = 0;
    while (i < 5) {
        if (write(fd, "block", 5) == 5) { ok = ok + 1; }
        else { failed = failed + 1; }
        i = i + 1;
    }
    close(fd);
    exit(ok * 10 + failed);
}
""")


def run_with(policy):
    rt = WaliRuntime(policy=policy)
    mod = compile_source(GUEST, name="guest")
    wp = rt.load(mod)
    return rt, wp, wp.run()


class TestLogger:
    def test_strace_style_log(self):
        logger = SyscallLogger()
        rt, wp, status = run_with(logger)
        assert status == 50  # all writes succeeded
        assert logger.log.count("write") == 5
        assert logger.log[0] in ("mmap", "openat")  # heap init or open
        assert "openat" in logger.log and "close" in logger.log

    def test_logger_is_uniform_across_isas(self):
        # name-bound calls: the same log on any arch (§6)
        logs = []
        for arch in ("x86_64", "aarch64"):
            logger = SyscallLogger()
            rt = WaliRuntime(arch=arch, policy=logger)
            rt.run(compile_source(GUEST, name="guest"))
            logs.append(logger.log)
        assert logs[0] == logs[1]


class TestFaultInjection:
    def test_fail_every_write(self):
        inj = FaultInjector(failures={"write": (ENOSPC, None)})
        rt, wp, status = run_with(inj)
        assert status == 5  # 0 ok, 5 failed
        assert len(inj.injected) == 5

    def test_fail_nth_write_only(self):
        inj = FaultInjector(failures={"write": (EIO, 3)})
        rt, wp, status = run_with(inj)
        assert status == 41  # 4 ok, 1 failed
        assert inj.injected == [("write", 3)]

    def test_guest_sees_errno(self):
        src = with_libc(r"""
export func _start() {
    var fd: i32 = open("/tmp/f", O_CREAT | O_RDWR, 0x1b4);
    if (write(fd, "x", 1) == -1 && errno == 28) { exit(28); }  // ENOSPC
    exit(0);
}
""")
        inj = FaultInjector(failures={"write": (ENOSPC, None)})
        rt = WaliRuntime(policy=inj)
        assert rt.run(compile_source(src, name="g")) == 28

    def test_injection_composes_with_deny(self):
        inj = FaultInjector(failures={"write": (EIO, 1)}, deny={"socket"})
        rt, wp, status = run_with(inj)
        assert status == 41
        # deny still traps
        src = with_libc(r"""
export func _start() { SYS_socket(2, 1, 0); exit(0); }
""")
        rt = WaliRuntime(policy=inj)
        wp = rt.load(compile_source(src, name="net"))
        wp.run()
        assert wp.trap is not None

    def test_untargeted_syscalls_unaffected(self):
        inj = FaultInjector(failures={"read": (EIO, None)})
        rt, wp, status = run_with(inj)
        assert status == 50


class TestPolicyModes:
    def test_allow_list_mode(self):
        needed = {"openat", "write", "close", "mmap", "exit", "exit_group"}
        rt, wp, status = run_with(SecurityPolicy(allow=needed))
        assert status == 50
        assert wp.trap is None

    def test_allow_list_traps_on_excess(self):
        rt, wp, status = run_with(SecurityPolicy(allow={"exit_group"}))
        assert wp.trap is not None
        assert wp.trap.kind == "syscall-denied"
