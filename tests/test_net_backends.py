"""Cross-backend network tests.

Three layers:

* a **conformance matrix** (``TestConformance``): every shared-semantics
  test runs against both hermetic backends — ``loopback`` and ``wan`` —
  through the same syscall surface, so the backends cannot drift apart
  on Linux semantics (bind/listen/accept/connect, EAGAIN on nonblocking,
  ECONNREFUSED, POLLHUP on peer close, shutdown halves, SO_REUSEADDR),
* **fault injection** (``TestWanFaults``): behaviors only the simulated
  WAN exhibits — silent datagram loss, readiness delayed past an
  ``epoll_pwait`` timeout, edge-triggered delivery per arrival,
  bandwidth pacing, jitter that never reorders,
* **backend selection** (``TestBackendSelection``): the ``--net`` spec
  parser, the loopback default, and the host backend's opt-in gate.
"""

import os
import time

import pytest

from repro.kernel import (
    AF_INET, EPOLL_CTL_ADD, EPOLLET, EPOLLIN, EPOLLOUT,
    IORING_OP_RECV, IORING_OP_SEND, IOSQE_IO_LINK, Kernel, KernelError,
    LoopbackBackend, O_NONBLOCK, SOCK_DGRAM, SOCK_STREAM, SQE, WanBackend,
    create_backend,
)
from repro.kernel.errno import (
    EADDRINUSE, EAGAIN, ECONNREFUSED, EINVAL, ENOTCONN, EPERM, EPIPE,
)
from repro.kernel.net import (
    HostBackend, SHUT_RD, SHUT_WR, SO_REUSEADDR, SOCK_NONBLOCK, SOL_SOCKET,
)

POLLIN, POLLOUT, POLLERR, POLLHUP = 1, 4, 8, 0x10
F_SETFL = 4

# the two hermetic backends every shared-semantics test must agree on;
# the wan spec uses a real (small) delay so the asynchronous delivery
# path is exercised, not short-circuited.  Each backend also runs with
# the scheduler squeezed (2 CPU slots, 50 us slices, 2 CPU-bound
# background spinner guests): Linux semantics must survive arbitrary
# preemption of the serving task between any two syscalls.
CONFORMANCE_BACKENDS = [
    pytest.param(("loopback", False), id="loopback"),
    pytest.param(("wan:latency_ms=2,jitter_ms=1", False), id="wan"),
    pytest.param(("loopback", True), id="loopback-contended"),
    pytest.param(("wan:latency_ms=2,jitter_ms=1", True),
                 id="wan-contended"),
]

# 2 slots for 2 spinners + the driver: every driver syscall must win a
# slot back from a CPU-bound guest via wakeup preemption
CONTENTION_SCHED = "sched:cpus=2,slice_us=50"


@pytest.fixture(params=CONFORMANCE_BACKENDS)
def kern(request, wan_seed):
    spec, contended = request.param
    if spec.startswith("wan") and "seed=" not in spec:
        spec += f",seed={wan_seed}"
    if not contended:
        return Kernel(net_backend=spec)
    from repro.kernel import BackgroundSpinners

    k = Kernel(net_backend=spec, sched=CONTENTION_SCHED)
    spinners = BackgroundSpinners(k, n=2).start()
    request.addfinalizer(spinners.stop)
    return k


@pytest.fixture
def proc(kern):
    return kern.create_process(["netconf"])


def _listener(kern, proc, port=9001, backlog=16):
    fd = kern.call(proc, "socket", AF_INET, SOCK_STREAM)
    kern.call(proc, "bind", fd, ("127.0.0.1", port))
    kern.call(proc, "listen", fd, backlog)
    return fd


def _connected_pair(kern, proc, port=9001):
    """(client_fd, server_fd) through the full handshake."""
    lfd = _listener(kern, proc, port)
    cfd = kern.call(proc, "socket", AF_INET, SOCK_STREAM)
    kern.call(proc, "connect", cfd, ("127.0.0.1", port))
    sfd = kern.call(proc, "accept", lfd)
    return cfd, sfd


def _await(kern, proc, fd, want, timeout_ms=2000):
    """Block until ``fd`` reports any of ``want``; returns revents (0 on
    timeout).  Works identically on instant and delayed backends."""
    ready = kern.call(proc, "ppoll", [(fd, want)], timeout_ms * 1_000_000)
    return dict(ready).get(fd, 0)


class TestConformance:
    """Identical Linux semantics across loopback and wan."""

    def test_bind_listen_connect_accept_roundtrip(self, kern, proc):
        cfd, sfd = _connected_pair(kern, proc)
        kern.call(proc, "sendto", cfd, b"hello backend")
        data, _ = kern.call(proc, "recvfrom", sfd, 64)  # blocking
        assert data == b"hello backend"
        kern.call(proc, "sendto", sfd, b"ack")
        data, _ = kern.call(proc, "recvfrom", cfd, 64)
        assert data == b"ack"

    def test_eagain_on_nonblocking_empty_recv(self, kern, proc):
        cfd, sfd = _connected_pair(kern, proc)
        kern.call(proc, "fcntl", cfd, F_SETFL, O_NONBLOCK)
        with pytest.raises(KernelError) as exc:
            kern.call(proc, "recvfrom", cfd, 64)
        assert exc.value.errno == EAGAIN

    def test_connect_refused_without_listener(self, kern, proc):
        cfd = kern.call(proc, "socket", AF_INET, SOCK_STREAM)
        with pytest.raises(KernelError) as exc:
            kern.call(proc, "connect", cfd, ("127.0.0.1", 4444))
        assert exc.value.errno == ECONNREFUSED

    def test_connect_refused_when_backlog_full(self, kern, proc):
        _listener(kern, proc, backlog=1)
        first = kern.call(proc, "socket", AF_INET, SOCK_STREAM)
        kern.call(proc, "connect", first, ("127.0.0.1", 9001))
        second = kern.call(proc, "socket", AF_INET, SOCK_STREAM)
        with pytest.raises(KernelError) as exc:
            kern.call(proc, "connect", second, ("127.0.0.1", 9001))
        assert exc.value.errno == ECONNREFUSED

    def test_eaddrinuse_and_so_reuseaddr(self, kern, proc):
        _listener(kern, proc, port=9007)
        clash = kern.call(proc, "socket", AF_INET, SOCK_STREAM)
        with pytest.raises(KernelError) as exc:
            kern.call(proc, "bind", clash, ("127.0.0.1", 9007))
        assert exc.value.errno == EADDRINUSE
        kern.call(proc, "setsockopt", clash, SOL_SOCKET, SO_REUSEADDR, 1)
        kern.call(proc, "bind", clash, ("127.0.0.1", 9007))  # now allowed
        assert kern.call(proc, "getsockname", clash) == ("127.0.0.1", 9007)

    def test_pollhup_on_peer_close(self, kern, proc):
        cfd, sfd = _connected_pair(kern, proc)
        kern.call(proc, "close", sfd)
        revents = _await(kern, proc, cfd, POLLIN)
        assert revents & POLLHUP
        data, _ = kern.call(proc, "recvfrom", cfd, 64)  # EOF, not an error
        assert data == b""

    def test_shutdown_halves(self, kern, proc):
        cfd, sfd = _connected_pair(kern, proc)
        kern.call(proc, "shutdown", cfd, SHUT_WR)
        # the server sees EOF on its read half...
        data, _ = kern.call(proc, "recvfrom", sfd, 64)
        assert data == b""
        # ...but the reverse direction still flows
        kern.call(proc, "sendto", sfd, b"still open")
        data, _ = kern.call(proc, "recvfrom", cfd, 64)
        assert data == b"still open"
        # and writing on the shut-down half is EPIPE (checked last: the
        # generated SIGPIPE stays pending on this test's process)
        with pytest.raises(KernelError) as exc:
            kern.call(proc, "sendto", cfd, b"nope")
        assert exc.value.errno == EPIPE

    def test_shutdown_read_half_is_local_eof(self, kern, proc):
        cfd, _sfd = _connected_pair(kern, proc)
        kern.call(proc, "shutdown", cfd, SHUT_RD)
        data, _ = kern.call(proc, "recvfrom", cfd, 64)
        assert data == b""

    def test_dgram_roundtrip_carries_source_addr(self, kern, proc):
        a = kern.call(proc, "socket", AF_INET, SOCK_DGRAM)
        b = kern.call(proc, "socket", AF_INET, SOCK_DGRAM)
        kern.call(proc, "bind", a, ("127.0.0.1", 5001))
        kern.call(proc, "bind", b, ("127.0.0.1", 5002))
        n = kern.call(proc, "sendto", a, b"probe", ("127.0.0.1", 5002))
        assert n == 5
        data, src = kern.call(proc, "recvfrom", b, 64)
        assert data == b"probe" and src == ("127.0.0.1", 5001)

    def test_dgram_to_unbound_target_refused(self, kern, proc):
        a = kern.call(proc, "socket", AF_INET, SOCK_DGRAM)
        kern.call(proc, "bind", a, ("127.0.0.1", 5001))
        with pytest.raises(KernelError) as exc:
            kern.call(proc, "sendto", a, b"void", ("127.0.0.1", 5999))
        assert exc.value.errno == ECONNREFUSED

    def test_nonblocking_accept_eagain_then_success(self, kern, proc):
        lfd = _listener(kern, proc)
        proc.fdtable.get(lfd).flags |= O_NONBLOCK
        with pytest.raises(KernelError) as exc:
            kern.call(proc, "accept4", lfd, SOCK_NONBLOCK)
        assert exc.value.errno == EAGAIN
        cfd = kern.call(proc, "socket", AF_INET, SOCK_STREAM)
        kern.call(proc, "connect", cfd, ("127.0.0.1", 9001))
        conn = kern.call(proc, "accept4", lfd, SOCK_NONBLOCK)
        assert proc.fdtable.get(conn).nonblocking

    def test_epoll_readiness_parity(self, kern, proc):
        cfd, sfd = _connected_pair(kern, proc)
        ep = kern.call(proc, "epoll_create1", 0)
        kern.call(proc, "epoll_ctl", ep, EPOLL_CTL_ADD, sfd,
                  EPOLLIN | EPOLLOUT)
        # connected + empty: writable only
        ready = kern.call(proc, "epoll_pwait", ep, 8,
                          timeout_ns=1_000_000_000)
        assert ready == [(sfd, EPOLLOUT)]
        kern.call(proc, "sendto", cfd, b"x")
        deadline = time.monotonic() + 2.0
        while time.monotonic() < deadline:
            ready = kern.call(proc, "epoll_pwait", ep, 8,
                              timeout_ns=1_000_000_000)
            if ready and ready[0][1] & EPOLLIN:
                break
        assert ready == [(sfd, EPOLLIN | EPOLLOUT)]

    def test_getsockname_getpeername(self, kern, proc):
        cfd, sfd = _connected_pair(kern, proc, port=9010)
        assert kern.call(proc, "getpeername", cfd) == ("127.0.0.1", 9010)
        assert kern.call(proc, "getsockname", sfd) == ("127.0.0.1", 9010)

    def test_socketpair_duplex(self, kern, proc):
        a, b = kern.call(proc, "socketpair", AF_INET, SOCK_STREAM)
        kern.call(proc, "sendto", a, b"ping")
        data, _ = kern.call(proc, "recvfrom", b, 64)
        assert data == b"ping"
        kern.call(proc, "sendto", b, b"pong")
        data, _ = kern.call(proc, "recvfrom", a, 64)
        assert data == b"pong"

    def test_stream_data_precedes_eof_on_close(self, kern, proc):
        """A close right behind written data never truncates the stream."""
        cfd, sfd = _connected_pair(kern, proc)
        kern.call(proc, "sendto", cfd, b"last words")
        kern.call(proc, "close", cfd)
        data, _ = kern.call(proc, "recvfrom", sfd, 64)
        assert data == b"last words"
        data, _ = kern.call(proc, "recvfrom", sfd, 64)
        assert data == b""

    def test_ring_echo_roundtrip(self, kern, proc):
        """The io_uring path serves an echo identically on both backends:
        a parked RECV completes when the (possibly delayed) request
        lands, and the linked reply SEND flows back over the same wire."""
        cfd, sfd = _connected_pair(kern, proc)
        rfd = kern.call(proc, "io_uring_setup", 8)
        # server: RECV parked until the request arrives
        sub, cqes = kern.call(proc, "io_uring_enter", rfd,
                              [SQE(IORING_OP_RECV, fd=sfd, length=64,
                                   user_data=1)])
        assert sub == 1 and cqes == []
        kern.call(proc, "sendto", cfd, b"ring request")
        _sub, cqes = kern.call(proc, "io_uring_enter", rfd, [], 1,
                               5_000_000_000)
        assert [(c.user_data, c.res, c.data) for c in cqes] == \
            [(1, 12, b"ring request")]
        # reply: SEND linked to the RECV of the client's next request
        sqes = [SQE(IORING_OP_SEND, fd=sfd, data=b"ring reply",
                    user_data=2, flags=IOSQE_IO_LINK),
                SQE(IORING_OP_RECV, fd=sfd, length=64, user_data=3)]
        _sub, reaped = kern.call(proc, "io_uring_enter", rfd, sqes)
        data, _ = kern.call(proc, "recvfrom", cfd, 64)  # blocking
        assert data == b"ring reply"
        kern.call(proc, "sendto", cfd, b"again")
        while len(reaped) < 2:
            _sub, cqes = kern.call(proc, "io_uring_enter", rfd, [], 1,
                                   5_000_000_000)
            assert cqes, reaped
            reaped.extend(cqes)
        assert {(c.user_data, c.res) for c in reaped} == {(2, 10), (3, 5)}

    def test_packet_tap_sees_wire_traffic(self, kern, proc):
        """An attached tap records stream payloads and the EOF marker in
        wire order on every backend (instant or delayed delivery)."""
        tap = kern.net.attach_tap()
        cfd, sfd = _connected_pair(kern, proc)
        kern.call(proc, "sendto", cfd, b"first")
        kern.call(proc, "sendto", cfd, b"second")
        data, _ = kern.call(proc, "recvfrom", sfd, 64)
        while len(data) < 11:
            more, _ = kern.call(proc, "recvfrom", sfd, 64)
            data += more
        kern.call(proc, "close", cfd)
        deadline = time.monotonic() + 2.0
        while tap.count("eof") == 0 and time.monotonic() < deadline:
            time.sleep(0.005)
        assert tap.payloads("data") == [b"first", b"second"]
        assert tap.nbytes("data") == 11
        assert tap.count("eof") >= 1
        pcap = tap.to_pcap()
        assert pcap[:4] == (0xA1B2C3D4).to_bytes(4, "little")
        kern.net.detach_tap(tap)
        a, b = kern.call(proc, "socketpair", AF_INET, SOCK_STREAM)
        kern.call(proc, "sendto", a, b"untapped")
        assert tap.nbytes("data") == 11  # detached taps stop recording

    def test_uring_multishot_accept_and_recv(self, kern, proc):
        """Multishot CQE streams survive every backend: one armed accept
        SQE posts a CQE (flagged F_MORE) per handshake whether arrivals
        are instant or delayed, and one armed recv posts a CQE per
        message until peer close posts the terminal no-MORE CQE."""
        from repro.kernel import (
            IORING_ACCEPT_MULTISHOT, IORING_CQE_F_MORE, IORING_OP_ACCEPT,
            IORING_RECV_MULTISHOT,
        )

        rfd = kern.call(proc, "io_uring_setup", 16)
        lfd = _listener(kern, proc, port=9460)
        sub, cqes = kern.call(
            proc, "io_uring_enter", rfd,
            [SQE(IORING_OP_ACCEPT, fd=lfd, off=IORING_ACCEPT_MULTISHOT,
                 user_data=1)])
        assert (sub, cqes) == (1, [])
        clients = []
        for _ in range(3):
            c = kern.call(proc, "socket", AF_INET, SOCK_STREAM)
            kern.call(proc, "connect", c, ("127.0.0.1", 9460))
            clients.append(c)
        accepted = []
        deadline = time.monotonic() + 10
        while len(accepted) < 3 and time.monotonic() < deadline:
            _s, batch = kern.call(proc, "io_uring_enter", rfd, [], 1,
                                  500_000_000)
            accepted.extend(batch)
        assert len(accepted) == 3
        assert all(c.user_data == 1 and c.res > 0 and
                   c.flags & IORING_CQE_F_MORE for c in accepted)

        # one armed recv serves the first connection's whole lifetime
        sfd = accepted[0].res
        kern.call(proc, "io_uring_enter", rfd,
                  [SQE(IORING_OP_RECV, fd=sfd, length=64,
                       off=IORING_RECV_MULTISHOT, user_data=2)])
        for i in range(3):
            kern.call(proc, "sendto", clients[0], b"m%d" % i)
            _s, got = kern.call(proc, "io_uring_enter", rfd, [], 1,
                                5_000_000_000)
            assert [(c.user_data, c.res, c.data) for c in got] == \
                [(2, 2, b"m%d" % i)]
            assert got[0].flags & IORING_CQE_F_MORE
        kern.call(proc, "close", clients[0])
        _s, got = kern.call(proc, "io_uring_enter", rfd, [], 1,
                            5_000_000_000)
        assert [(c.user_data, c.res) for c in got] == [(2, 0)]
        assert not (got[0].flags & IORING_CQE_F_MORE)


@pytest.fixture
def wan_kernel(wan_seed):
    """Factory for WAN-fault kernels: specs without an explicit seed get
    the per-test fixture seed, so every impairment draw is replayable."""
    def make(spec):
        if "seed=" not in spec:
            spec += f",seed={wan_seed}"
        kern = Kernel(net_backend=spec)
        proc = kern.create_process(["wanfault"])
        return kern, proc
    return make


class TestWanFaults:
    """Impairment behaviors only the simulated WAN exhibits."""

    def test_full_datagram_loss_is_silent(self, wan_kernel):
        kern, proc = wan_kernel("wan:latency_ms=1,loss=1.0")
        a = kern.call(proc, "socket", AF_INET, SOCK_DGRAM)
        b = kern.call(proc, "socket", AF_INET, SOCK_DGRAM)
        kern.call(proc, "bind", a, ("127.0.0.1", 5001))
        kern.call(proc, "bind", b, ("127.0.0.1", 5002))
        proc.fdtable.get(b).flags |= O_NONBLOCK
        for i in range(10):
            # sender never learns: sendto reports full length, no error
            assert kern.call(proc, "sendto", a, b"gone",
                             ("127.0.0.1", 5002)) == 4
        time.sleep(0.05)  # well past the 1 ms link latency
        with pytest.raises(KernelError) as exc:
            kern.call(proc, "recvfrom", b, 64)
        assert exc.value.errno == EAGAIN

    def test_partial_loss_drops_some_keeps_order(self, wan_kernel):
        kern, proc = wan_kernel("wan:latency_ms=0.5,loss=0.5,seed=7")
        a = kern.call(proc, "socket", AF_INET, SOCK_DGRAM)
        b = kern.call(proc, "socket", AF_INET, SOCK_DGRAM)
        kern.call(proc, "bind", a, ("127.0.0.1", 5001))
        kern.call(proc, "bind", b, ("127.0.0.1", 5002))
        proc.fdtable.get(b).flags |= O_NONBLOCK
        sent = [f"d{i}".encode() for i in range(60)]
        for msg in sent:
            kern.call(proc, "sendto", a, msg, ("127.0.0.1", 5002))
        time.sleep(0.2)
        got = []
        while True:
            try:
                data, _ = kern.call(proc, "recvfrom", b, 64)
            except KernelError:
                break
            got.append(data)
        assert 10 < len(got) < 50  # ~50% loss, seeded
        # survivors arrive in send order (the link never reorders)
        indices = [sent.index(m) for m in got]
        assert indices == sorted(indices)

    def test_latency_beyond_timeout_then_readiness_on_next_wait(self, wan_kernel):
        kern, proc = wan_kernel("wan:latency_ms=120")
        cfd, sfd = kern.call(proc, "socketpair", AF_INET, SOCK_STREAM)
        ep = kern.call(proc, "epoll_create1", 0)
        kern.call(proc, "epoll_ctl", ep, EPOLL_CTL_ADD, sfd, EPOLLIN)
        kern.call(proc, "epoll_pwait", ep, 8, timeout_ns=0)  # level drain
        kern.call(proc, "sendto", cfd, b"delayed")
        # the payload is still on the wire: this wait must time out empty
        assert kern.call(proc, "epoll_pwait", ep, 8,
                         timeout_ns=25_000_000) == []
        # ...and the arrival must wake the next wait, not get lost
        ready = kern.call(proc, "epoll_pwait", ep, 8,
                          timeout_ns=2_000_000_000)
        assert ready == [(sfd, EPOLLIN)]
        data, _ = kern.call(proc, "recvfrom", sfd, 64)
        assert data == b"delayed"

    def test_edge_triggered_fires_once_per_delayed_arrival(self, wan_kernel):
        kern, proc = wan_kernel("wan:latency_ms=10")
        cfd, sfd = kern.call(proc, "socketpair", AF_INET, SOCK_STREAM)
        ep = kern.call(proc, "epoll_create1", 0)
        kern.call(proc, "epoll_ctl", ep, EPOLL_CTL_ADD, sfd,
                  EPOLLIN | EPOLLET)
        kern.call(proc, "epoll_pwait", ep, 8, timeout_ns=0)
        for round_no in range(3):
            kern.call(proc, "sendto", cfd, b"edge")
            ready = kern.call(proc, "epoll_pwait", ep, 8,
                              timeout_ns=2_000_000_000)
            assert ready == [(sfd, EPOLLIN)], round_no
            # same buffered data, no new arrival: ET stays silent
            assert kern.call(proc, "epoll_pwait", ep, 8,
                             timeout_ns=30_000_000) == []
            kern.call(proc, "recvfrom", sfd, 64)

    def test_bandwidth_cap_paces_delivery(self, wan_kernel):
        # 800 kbit/s = 100 KB/s: an 8 KiB burst needs ~82 ms on the wire
        kern, proc = wan_kernel("wan:latency_ms=0,bw_kbps=800")
        cfd, sfd = kern.call(proc, "socketpair", AF_INET, SOCK_STREAM)
        payload = b"b" * 8192
        t0 = time.perf_counter()
        kern.call(proc, "sendto", cfd, payload)
        got = bytearray()
        while len(got) < len(payload):
            data, _ = kern.call(proc, "recvfrom", sfd, 65536)
            got.extend(data)
        elapsed = time.perf_counter() - t0
        assert bytes(got) == payload
        assert elapsed >= 0.05, f"8 KiB at 100 KB/s took {elapsed:.3f}s"

    def test_jitter_never_reorders_stream(self, wan_kernel):
        kern, proc = wan_kernel("wan:latency_ms=1,jitter_ms=5,seed=3")
        cfd, sfd = kern.call(proc, "socketpair", AF_INET, SOCK_STREAM)
        chunks = [f"[{i:03d}]".encode() for i in range(20)]
        for c in chunks:
            kern.call(proc, "sendto", cfd, c)
        want = b"".join(chunks)
        got = bytearray()
        while len(got) < len(want):
            data, _ = kern.call(proc, "recvfrom", sfd, 4096)
            got.extend(data)
        assert bytes(got) == want

    def test_stream_is_reliable_loss_only_hits_datagrams(self, wan_kernel):
        kern, proc = wan_kernel("wan:latency_ms=1,loss=1.0")
        cfd, sfd = kern.call(proc, "socketpair", AF_INET, SOCK_STREAM)
        kern.call(proc, "sendto", cfd, b"tcp survives")
        data, _ = kern.call(proc, "recvfrom", sfd, 64)
        assert data == b"tcp survives"

    def test_no_premature_hup_while_data_in_flight(self, wan_kernel):
        """A peer close must not read as HUP-without-IN while data and
        the EOF marker are still on the wire — an event loop treating
        bare HUP as connection-dead would truncate the stream."""
        kern, proc = wan_kernel("wan:latency_ms=100")
        cfd, sfd = kern.call(proc, "socketpair", AF_INET, SOCK_STREAM)
        kern.call(proc, "sendto", cfd, b"last words")
        kern.call(proc, "close", cfd)
        # nothing delivered yet: no readiness at all on the receiver
        assert kern.call(proc, "ppoll", [(sfd, POLLIN)],
                         20_000_000) == []
        # once the wire drains: data, EOF, and hangup — in that order
        revents = _await(kern, proc, sfd, POLLIN)
        assert revents & POLLIN
        data, _ = kern.call(proc, "recvfrom", sfd, 64)
        assert data == b"last words"
        data, _ = kern.call(proc, "recvfrom", sfd, 64)
        assert data == b""
        assert _await(kern, proc, sfd, POLLIN) & POLLHUP

    def test_connect_charges_one_handshake_rtt(self, wan_kernel):
        """Stream connect blocks for ~1 SYN/SYN-ACK round trip, so
        connection-heavy workloads are network-bound at startup too."""
        kern, proc = wan_kernel("wan:latency_ms=5")
        lfd = kern.call(proc, "socket", AF_INET, SOCK_STREAM)
        kern.call(proc, "bind", lfd, ("127.0.0.1", 9001))
        kern.call(proc, "listen", lfd, 8)
        cfd = kern.call(proc, "socket", AF_INET, SOCK_STREAM)
        t0 = time.perf_counter()
        kern.call(proc, "connect", cfd, ("127.0.0.1", 9001))
        elapsed = time.perf_counter() - t0
        # ~1 RTT = 2 x 5 ms one-way latency (no jitter configured)
        assert 0.009 <= elapsed < 0.2, elapsed
        # a refused connect pays the same wire time (RST rides back)
        bad = kern.call(proc, "socket", AF_INET, SOCK_STREAM)
        t0 = time.perf_counter()
        with pytest.raises(KernelError):
            kern.call(proc, "connect", bad, ("127.0.0.1", 4444))
        assert time.perf_counter() - t0 >= 0.009

    def test_dgram_connect_is_free_of_handshake(self, wan_kernel):
        kern, proc = wan_kernel("wan:latency_ms=50")
        a = kern.call(proc, "socket", AF_INET, SOCK_DGRAM)
        b = kern.call(proc, "socket", AF_INET, SOCK_DGRAM)
        kern.call(proc, "bind", b, ("127.0.0.1", 5002))
        t0 = time.perf_counter()
        kern.call(proc, "connect", a, ("127.0.0.1", 5002))
        assert time.perf_counter() - t0 < 0.04  # no SYN for datagrams

    def test_reorder_knob_permutes_datagrams(self, wan_kernel):
        """netem-style reordering: some datagrams jump the delay line;
        the payload set is intact but arrival order is permuted."""
        kern, proc = wan_kernel("wan:latency_ms=10,reorder=0.3,seed=5")
        a = kern.call(proc, "socket", AF_INET, SOCK_DGRAM)
        b = kern.call(proc, "socket", AF_INET, SOCK_DGRAM)
        kern.call(proc, "bind", a, ("127.0.0.1", 5001))
        kern.call(proc, "bind", b, ("127.0.0.1", 5002))
        proc.fdtable.get(b).flags |= O_NONBLOCK
        sent = [f"d{i:02d}".encode() for i in range(30)]
        for msg in sent:
            kern.call(proc, "sendto", a, msg, ("127.0.0.1", 5002))
        time.sleep(0.15)
        got = []
        while True:
            try:
                data, _ = kern.call(proc, "recvfrom", b, 64)
            except KernelError:
                break
            got.append(data)
        assert sorted(got) == sorted(sent)  # nothing lost or duplicated
        assert got != sent                  # ...but the order changed
        indices = [sent.index(m) for m in got]
        inversions = sum(1 for i in range(len(indices) - 1)
                         if indices[i] > indices[i + 1])
        assert inversions >= 1, indices

    def test_dup_knob_duplicates_datagrams(self, wan_kernel):
        kern, proc = wan_kernel("wan:latency_ms=1,dup=1.0")
        a = kern.call(proc, "socket", AF_INET, SOCK_DGRAM)
        b = kern.call(proc, "socket", AF_INET, SOCK_DGRAM)
        kern.call(proc, "bind", a, ("127.0.0.1", 5001))
        kern.call(proc, "bind", b, ("127.0.0.1", 5002))
        proc.fdtable.get(b).flags |= O_NONBLOCK
        for i in range(5):
            kern.call(proc, "sendto", a, f"m{i}".encode(),
                      ("127.0.0.1", 5002))
        time.sleep(0.08)
        got = []
        while True:
            try:
                data, _ = kern.call(proc, "recvfrom", b, 64)
            except KernelError:
                break
            got.append(data)
        # every datagram arrives exactly twice, the copy right behind
        assert got == [f"m{i}".encode() for i in range(5)
                       for _ in range(2)]

    def test_reorder_dup_never_touch_streams(self, wan_kernel):
        """TCP semantics survive the fault knobs: stream bytes stay in
        order and unduplicated even with reorder=1,dup=1."""
        kern, proc = wan_kernel(
            "wan:latency_ms=2,jitter_ms=1,reorder=1.0,dup=1.0,seed=9")
        cfd, sfd = kern.call(proc, "socketpair", AF_INET, SOCK_STREAM)
        chunks = [f"[{i:03d}]".encode() for i in range(15)]
        for c in chunks:
            kern.call(proc, "sendto", cfd, c)
        want = b"".join(chunks)
        got = bytearray()
        while len(got) < len(want):
            data, _ = kern.call(proc, "recvfrom", sfd, 4096)
            got.extend(data)
        assert bytes(got) == want

    def test_tap_misses_lost_datagrams(self, wan_kernel):
        """The tap records what reaches the wire: a datagram eaten by
        loss never appears in the capture."""
        kern, proc = wan_kernel("wan:latency_ms=1,loss=1.0")
        tap = kern.net.attach_tap()
        a = kern.call(proc, "socket", AF_INET, SOCK_DGRAM)
        b = kern.call(proc, "socket", AF_INET, SOCK_DGRAM)
        kern.call(proc, "bind", a, ("127.0.0.1", 5001))
        kern.call(proc, "bind", b, ("127.0.0.1", 5002))
        for i in range(10):
            kern.call(proc, "sendto", a, b"gone", ("127.0.0.1", 5002))
        time.sleep(0.05)
        assert tap.count("dgram") == 0

    def test_ring_recv_parks_across_the_delay_line(self, wan_kernel):
        """A ring RECV parked on a WAN socket completes only when the
        delayed payload lands — deferred completion rides the same
        waitqueue wakeups the epoll path uses."""
        kern, proc = wan_kernel("wan:latency_ms=40")
        cfd, sfd = kern.call(proc, "socketpair", AF_INET, SOCK_STREAM)
        rfd = kern.call(proc, "io_uring_setup", 8)
        kern.call(proc, "io_uring_enter", rfd,
                  [SQE(IORING_OP_RECV, fd=sfd, length=64, user_data=1)])
        kern.call(proc, "sendto", cfd, b"delayed by the wan")
        # still on the wire: an immediate reap returns nothing
        _sub, cqes = kern.call(proc, "io_uring_enter", rfd, [], 0)
        assert cqes == []
        t0 = time.perf_counter()
        _sub, cqes = kern.call(proc, "io_uring_enter", rfd, [], 1,
                               5_000_000_000)
        assert [(c.user_data, c.data) for c in cqes] == \
            [(1, b"delayed by the wan")]
        assert time.perf_counter() - t0 >= 0.01  # paid the link latency

    def test_inflight_bytes_charge_the_receive_window(self, wan_kernel):
        kern, proc = wan_kernel("wan:latency_ms=200")
        cfd, sfd = kern.call(proc, "socketpair", AF_INET, SOCK_STREAM)
        proc.fdtable.get(cfd).flags |= O_NONBLOCK
        from repro.kernel.net import SOCK_BUF_CAPACITY
        sent = 0
        with pytest.raises(KernelError) as exc:
            for _ in range(10):
                sent += kern.call(proc, "sendto", cfd,
                                  b"z" * SOCK_BUF_CAPACITY)
        # the window fills from in-flight bytes alone (nothing delivered
        # yet at 200 ms latency) and the writer sees EAGAIN, not overrun
        assert exc.value.errno == EAGAIN
        assert sent == SOCK_BUF_CAPACITY
        sock = proc.fdtable.get(sfd).sock
        assert len(sock.rx.data) + sock.rx.in_flight <= SOCK_BUF_CAPACITY


class TestImpairmentDeterminism:
    """Regression for the latent flake class the per-flow RNG kills: with
    a shared RNG, two sender threads racing on a lossy/jittery link drew
    from one stream, so loss/reorder/dup outcomes depended on thread
    timing.  Per-flow streams make every run bit-identical, however the
    scheduler interleaves the senders.

    The link latency (60 ms) is deliberately far longer than the whole
    send phase: every datagram is queued (or reorder-jumped) before the
    first delivery deadline, so the delivered sequence depends only on
    the seeded draws and FIFO queue order — never on timer slop.
    """

    SPEC = "wan:latency_ms=60,loss=0.3,reorder=0.2,dup=0.05"

    def _run_once(self, seed, b_count=40):
        import threading

        kern = Kernel(net_backend=f"{self.SPEC},seed={seed}",
                      sched="cpus=2,slice_us=50")
        proc = kern.create_process(["det"])
        rx1 = kern.call(proc, "socket", AF_INET, SOCK_DGRAM)
        rx2 = kern.call(proc, "socket", AF_INET, SOCK_DGRAM)
        kern.call(proc, "bind", rx1, ("127.0.0.1", 6001))
        kern.call(proc, "bind", rx2, ("127.0.0.1", 6002))
        for fd in (rx1, rx2):
            proc.fdtable.get(fd).flags |= O_NONBLOCK

        def sender(port_from, port_to, tag, count):
            sp = kern.create_process([f"s{tag}"])
            fd = kern.call(sp, "socket", AF_INET, SOCK_DGRAM)
            kern.call(sp, "bind", fd, ("127.0.0.1", port_from))
            for i in range(count):
                kern.call(sp, "sendto", fd, f"{tag}{i}".encode(),
                          ("127.0.0.1", port_to))
            kern.call(sp, "exit", 0)

        # two senders race on their own threads (scheduler-interleaved)
        t1 = threading.Thread(target=sender, args=(6003, 6001, "a", 40))
        t2 = threading.Thread(target=sender, args=(6004, 6002, "b",
                                                   b_count))
        t1.start(); t2.start(); t1.join(); t2.join()
        time.sleep(0.15)  # past the 60 ms delay line

        def drain(fd):
            got = []
            while True:
                try:
                    data, _ = kern.call(proc, "recvfrom", fd, 64)
                except KernelError:
                    return got
                got.append(data)
        return drain(rx1), drain(rx2)

    def test_runs_are_bit_reproducible(self, wan_seed):
        first = self._run_once(wan_seed)
        # impairments actually fired (not a trivially lossless run)...
        assert len(first[0]) != 40 or len(first[1]) != 40
        # ...and two more scheduler-interleaved runs match byte-for-byte
        for _ in range(2):
            assert self._run_once(wan_seed) == first

    def test_flows_are_independent_of_each_other(self, wan_seed):
        """Tripling flow B's traffic never changes flow A's outcome: the
        draws that decide A's fate belong to A's sender alone."""
        base_a, _ = self._run_once(wan_seed)
        more_b_a, _ = self._run_once(wan_seed, b_count=120)
        assert more_b_a == base_a


class TestBackendSelection:
    """The --net spec parser, defaults, and the host opt-in gate."""

    def test_default_is_loopback(self):
        assert isinstance(Kernel().net, LoopbackBackend)
        assert Kernel().net.describe() == "loopback"

    def test_spec_strings_resolve(self):
        assert isinstance(create_backend("loopback"), LoopbackBackend)
        wan = create_backend("wan:latency_ms=7.5,jitter_ms=2,loss=0.25,"
                             "bw_kbps=512,reorder=0.1,dup=0.01,seed=99")
        assert isinstance(wan, WanBackend)
        assert wan.latency_ns == 7_500_000
        assert wan.jitter_ns == 2_000_000
        assert wan.loss == 0.25
        assert wan.bw_kbps == 512
        assert wan.reorder == 0.1
        assert wan.dup == 0.01
        assert wan.seed == 99
        assert "reorder=0.1" in wan.describe()
        assert "dup=0.01" in wan.describe()
        # passing an instance through is identity
        assert create_backend(wan) is wan

    def test_unknown_backend_and_options_rejected(self):
        for bad in ("carrier-pigeon", "wan:warp_speed=9",
                    "loopback:latency_ms=1", "wan:loss=1.5",
                    "wan:reorder=2", "wan:dup=-0.5"):
            with pytest.raises(KernelError) as exc:
                create_backend(bad)
            assert exc.value.errno == EINVAL, bad

    def test_host_backend_requires_opt_in(self, monkeypatch):
        monkeypatch.delenv("REPRO_NET_HOST", raising=False)
        with pytest.raises(KernelError) as exc:
            create_backend("host")
        assert exc.value.errno == EPERM
        # explicit opt-in via the spec is accepted
        assert isinstance(create_backend("host:optin=1"), HostBackend)

    @pytest.mark.skipif(not os.environ.get("REPRO_NET_HOST"),
                        reason="real host sockets: set REPRO_NET_HOST=1")
    def test_host_stream_roundtrip(self):
        kern = Kernel(net_backend="host:optin=1")
        proc = kern.create_process(["hostnet"])
        lfd = kern.call(proc, "socket", AF_INET, SOCK_STREAM)
        kern.call(proc, "bind", lfd, ("127.0.0.1", 0))  # ephemeral port
        kern.call(proc, "listen", lfd, 8)
        host, port = kern.call(proc, "getsockname", lfd)
        cfd = kern.call(proc, "socket", AF_INET, SOCK_STREAM)
        kern.call(proc, "connect", cfd, (host, port))
        sfd = kern.call(proc, "accept", lfd)
        kern.call(proc, "sendto", cfd, b"over the real loopback")
        data, _ = kern.call(proc, "recvfrom", sfd, 64)
        assert data == b"over the real loopback"
        kern.call(proc, "close", cfd)
        revents = _await(kern, proc, sfd, POLLIN)
        assert revents & POLLIN
        data, _ = kern.call(proc, "recvfrom", sfd, 64)
        assert data == b""
