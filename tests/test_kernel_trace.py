"""The kernel observability layer: tracepoints, the trace ring,
/proc files, counters, latency histograms, and the ktop guest app."""

import os
import struct

import pytest

from repro.kernel import (
    AF_INET, AT_FDCWD, EPOLL_CTL_ADD, EPOLLIN, Kernel, KernelError,
    KernelTrace, O_NONBLOCK, O_RDONLY, O_WRONLY, SOCK_DGRAM, TRACEPOINTS,
    TRACE_RECORD_SIZE, TraceBuffer, create_trace, decode_records,
    hist_bucket,
)
from repro.kernel.trace import (
    CounterRegistry, TRACE_DROP_ID, TRACE_FLAG_DROP, TraceEvent,
)


@pytest.fixture
def k():
    kern = Kernel()
    yield kern
    kern.trace.close()


@pytest.fixture
def proc(k):
    return k.create_process(["t"], {})


def read_all(k, proc, path):
    fd = k.call(proc, "openat", AT_FDCWD, path, O_RDONLY, 0)
    out = b""
    while True:
        chunk = k.call(proc, "read", fd, 65536)
        if not chunk:
            break
        out += chunk
    k.call(proc, "close", fd)
    return out


def trace_ctl(k, proc, cmd):
    fd = k.call(proc, "openat", AT_FDCWD, "/proc/trace_ctl", O_WRONLY, 0)
    k.call(proc, "write", fd, cmd.encode())
    k.call(proc, "close", fd)


# --------------------------------------------------------------------------
# the ring buffer
# --------------------------------------------------------------------------

class TestTraceBuffer:
    def _ev(self, i):
        return TraceEvent(1000 + i, 0, 0, 1, i, "x")

    def test_push_read_roundtrip(self):
        buf = TraceBuffer(capacity=8)
        for i in range(3):
            buf.push(self._ev(i))
        data = buf.read_step(4096)
        recs = decode_records(data)
        assert [r.arg for r in recs] == [0, 1, 2]
        assert all(r.point == "sched_switch" for r in recs)

    def test_empty_read_eagain(self):
        buf = TraceBuffer(capacity=8)
        with pytest.raises(KernelError) as e:
            buf.read_step(4096)
        assert "EAGAIN" in str(e.value)

    def test_short_read_buffer_einval(self):
        buf = TraceBuffer(capacity=8)
        buf.push(self._ev(0))
        with pytest.raises(KernelError):
            buf.read_step(TRACE_RECORD_SIZE - 1)

    def test_read_drains_whole_records_only(self):
        buf = TraceBuffer(capacity=8)
        for i in range(5):
            buf.push(self._ev(i))
        data = buf.read_step(TRACE_RECORD_SIZE * 2 + 17)
        assert len(data) == TRACE_RECORD_SIZE * 2
        assert len(buf) == 3

    def test_overflow_single_marker(self):
        buf = TraceBuffer(capacity=4)
        for i in range(10):
            buf.push(self._ev(i))
        assert len(buf) == 5  # capacity + the one marker
        assert buf.dropped == 6
        recs = decode_records(buf.read_step(4096))
        markers = [r for r in recs if r.is_drop_marker]
        assert len(markers) == 1
        assert markers[0].arg == 6  # counts every swallowed event
        assert markers[0].info == "overflow"

    def test_marker_clears_on_drain(self):
        buf = TraceBuffer(capacity=2)
        for i in range(4):
            buf.push(self._ev(i))
        buf.read_step(4096)
        buf.push(self._ev(9))
        recs = decode_records(buf.read_step(4096))
        assert len(recs) == 1 and not recs[0].is_drop_marker

    def test_bad_capacity_einval(self):
        with pytest.raises(KernelError):
            TraceBuffer(capacity=0)

    def test_poll_and_wake(self):
        buf = TraceBuffer(capacity=4)
        assert buf.poll_events() == 0
        woken = []
        buf.wq.subscribe(woken.append)
        buf.push(self._ev(0))
        assert buf.poll_events() == EPOLLIN
        assert woken and woken[0] & EPOLLIN

    def test_close_is_noop(self):
        buf = TraceBuffer(capacity=4)
        buf.push(self._ev(0))
        buf.close()
        assert len(buf) == 1  # shared ring survives fd close


class TestCounterRegistry:
    def test_inc_get_snapshot(self):
        c = CounterRegistry()
        c.inc("a.b")
        c.inc("a.b", 4)
        c.inc("z.zero", 0)
        assert c.get("a.b") == c["a.b"] == 5
        assert c.get("missing") == 0
        assert c.snapshot() == {"a.b": 5}  # zeros filtered
        c.clear()
        assert c.snapshot() == {}


# --------------------------------------------------------------------------
# KernelTrace: clock, mask, control language
# --------------------------------------------------------------------------

class TestKernelTrace:
    def test_disabled_emit_is_dropped(self):
        t = KernelTrace()
        t.emit("sched_switch", pid=1)
        assert len(t.buffer) == 0

    def test_logical_clock_deterministic(self):
        a, b = KernelTrace(), KernelTrace()
        a.enable(), b.enable()
        for t in (a, b):
            t.emit("sched_switch", pid=1)
            t.emit("sched_wakeup", pid=2)
        ra = decode_records(a.buffer.read_step(4096))
        rb = decode_records(b.buffer.read_step(4096))
        assert [r.ts_ns for r in ra] == [r.ts_ns for r in rb]
        assert ra[0].ts_ns < ra[1].ts_ns

    def test_mask_filters(self):
        t = KernelTrace()
        t.enable()
        t.set_mask({"net_drop"})
        t.emit("sched_switch", pid=1)
        t.emit("net_drop", arg=9)
        recs = decode_records(t.buffer.read_step(4096))
        assert [r.point for r in recs] == ["net_drop"]

    def test_unknown_mask_einval(self):
        t = KernelTrace()
        with pytest.raises(KernelError):
            t.set_mask({"bogus_point"})

    def test_control_language(self):
        t = KernelTrace()
        t.control("mask=syscall_enter,syscall_exit\non\n")
        assert t.enabled and t.mask == {"syscall_enter", "syscall_exit"}
        t.control("+net_drop; -syscall_exit")
        assert t.mask == {"syscall_enter", "net_drop"}
        t.control("mask=none")
        assert t.mask == set()
        t.control("mask=all")
        assert t.mask == set(TRACEPOINTS)
        t.enable()
        t.emit("net_drop")
        t.control("clear")
        assert len(t.buffer) == 0
        t.control("off")
        assert not t.enabled

    def test_control_bad_command_einval(self):
        t = KernelTrace()
        for bad in ("bogus", "+nope", "mask=what"):
            with pytest.raises(KernelError):
                t.control(bad)

    def test_create_trace_specs(self):
        assert create_trace("off") is None
        assert create_trace("none") is None
        assert create_trace(None).enabled is False
        assert create_trace("on").enabled is True
        inst = KernelTrace()
        assert create_trace(inst) is inst
        with pytest.raises(KernelError):
            create_trace("sideways")

    def test_status_text(self):
        t = KernelTrace()
        t.enable()
        t.set_mask({"net_drop"})
        t.emit("net_drop")
        text = t.status_text()
        assert "tracing: on" in text
        assert "+net_drop" in text and "-sched_switch" in text
        assert "trace.events: 1" in text


class TestHistograms:
    def test_bucket_geometry(self):
        assert hist_bucket(0) == 0
        assert hist_bucket(-5) == 0
        assert hist_bucket(1) == 1
        assert hist_bucket(1023) == 10
        assert hist_bucket(1024) == 11
        assert hist_bucket(1 << 70) == 63  # clamps

    def test_record_syscall_splits_service_and_wait(self):
        t = KernelTrace()
        t.record_syscall("read", 1000, 0)
        t.record_syscall("read", 1500, 3000)
        assert sum(t.service_hist["read"]) == 2
        assert sum(t.wait_hist["read"]) == 1  # zero wait not recorded

    def test_histograms_always_on(self, k, proc):
        assert not k.trace.enabled
        k.call(proc, "getpid")
        assert sum(k.trace.service_hist["getpid"]) == 1


# --------------------------------------------------------------------------
# the kernel wiring: syscall tracepoints, exact records, /proc surface
# --------------------------------------------------------------------------

class TestSyscallTracepoints:
    def test_exact_enter_exit_records(self, k, proc):
        k.trace.set_mask({"syscall_enter", "syscall_exit"})
        k.trace.enable()
        k.call(proc, "getpid")
        k.trace.disable()
        recs = [r for r in decode_records(k.trace.buffer.read_step(65536))
                if r.info == "getpid"]
        assert [(r.point, r.pid, r.arg) for r in recs] == [
            ("syscall_enter", proc.pid, 0),
            ("syscall_exit", proc.pid, 0),
        ]

    def test_exit_carries_errno(self, k, proc):
        k.trace.set_mask({"syscall_exit"})
        k.trace.enable()
        with pytest.raises(KernelError):
            k.call(proc, "openat", AT_FDCWD, "/does/not/exist", O_RDONLY, 0)
        k.trace.disable()
        recs = decode_records(k.trace.buffer.read_step(65536))
        bad = [r for r in recs if r.info == "openat"]
        assert bad and bad[0].arg == -2  # -ENOENT

    def test_sched_tracepoints_fire(self, k, proc):
        k.trace.set_mask({"sched_switch"})
        k.trace.enable()
        k.call(proc, "getpid")
        k.trace.disable()
        recs = decode_records(k.trace.buffer.read_step(65536))
        assert any(r.point == "sched_switch" for r in recs)

    def test_wq_wake_hook_attaches_only_when_wanted(self, k, proc):
        from repro.kernel.eventpoll import _wake_hooks
        assert k.trace._wq_hook is None
        k.trace.enable()
        assert k.trace._wq_hook in _wake_hooks
        k.trace.set_mask({"syscall_exit"})
        assert k.trace._wq_hook is None
        k.trace.disable()

    def test_wq_wake_traces_eventfd_write(self, k, proc):
        k.trace.set_mask({"wq_wake"})
        k.trace.enable()
        efd = k.call(proc, "eventfd2", 0, 0)
        k.call(proc, "write", efd, struct.pack("<Q", 1))
        k.trace.disable()
        recs = decode_records(k.trace.buffer.read_step(65536))
        assert any(r.point == "wq_wake" and r.arg & EPOLLIN for r in recs)


class TestProcObservability:
    def test_sched_debug_lists_tasks(self, k, proc):
        text = read_all(k, proc, "/proc/sched_debug").decode()
        assert text.startswith("sched:cpus=")
        assert f"\n    {proc.pid} t" in text or f" {proc.pid} t" in text

    def test_proc_stat_has_sched_fields(self, k, proc):
        text = read_all(k, proc, f"/proc/{proc.pid}/stat").decode()
        fields = text.split()
        assert fields[0] == str(proc.pid)
        assert len(fields) >= 10  # classic columns + nice/vrt/wait/cpu

    def test_proc_status_has_observability_lines(self, k, proc):
        text = read_all(k, proc, "/proc/self/status").decode()
        for key in ("Nice:", "VRuntime:", "WaitNs:", "ServiceNs:",
                    "FDSize:"):
            assert key in text

    def test_uring_stats_count_submissions(self, k, proc):
        from repro.kernel import IORING_OP_NOP, SQE
        fd = k.call(proc, "io_uring_setup", 8)
        k.call(proc, "io_uring_enter", fd, [SQE(IORING_OP_NOP)], 1)
        text = read_all(k, proc, "/proc/uring").decode()
        assert "sqes_submitted: 1" in text
        assert "cqes_completed: 1" in text
        assert k.trace.counters["uring.submitted"] == 1

    def test_sockstat_counts_deliveries(self, k, proc):
        a = k.call(proc, "socket", AF_INET, SOCK_DGRAM, 0)
        b = k.call(proc, "socket", AF_INET, SOCK_DGRAM, 0)
        k.call(proc, "bind", b, ("127.0.0.1", 7001))
        k.call(proc, "sendto", a, b"ping", ("127.0.0.1", 7001))
        text = read_all(k, proc, "/proc/net/sockstat").decode()
        assert "backend: loopback" in text
        assert "delivered: 1" in text
        assert "delivered_bytes: 4" in text

    def test_wan_loss_counted_and_traced(self):
        k = Kernel(net_backend="wan:latency_ms=0,loss=1.0")
        try:
            proc = k.create_process(["t"], {})
            k.trace.set_mask({"net_drop"})
            k.trace.enable()
            a = k.call(proc, "socket", AF_INET, SOCK_DGRAM, 0)
            b = k.call(proc, "socket", AF_INET, SOCK_DGRAM, 0)
            k.call(proc, "bind", b, ("127.0.0.1", 7002))
            k.call(proc, "sendto", a, b"doomed", ("127.0.0.1", 7002))
            k.trace.disable()
            assert k.trace.counters["net.drop"] == 1
            recs = decode_records(k.trace.buffer.read_step(65536))
            drops = [r for r in recs if r.point == "net_drop"]
            assert drops and drops[0].arg == 6 and drops[0].info == "loss"
            text = read_all(k, proc, "/proc/net/sockstat").decode()
            assert "dropped: 1" in text
        finally:
            k.trace.close()

    def test_inotify_enqueue_counted(self, k, proc):
        k.call(proc, "mkdirat", AT_FDCWD, "/tmp/tw", 0o755)
        ifd = k.call(proc, "inotify_init1", 0)
        k.call(proc, "inotify_add_watch", ifd, "/tmp/tw", 0x100)  # IN_CREATE
        fd = k.call(proc, "openat", AT_FDCWD, "/tmp/tw/f", 0o101, 0o644)
        k.call(proc, "close", fd)
        assert k.trace.counters["inotify.enqueued"] >= 1
        text = read_all(k, proc, "/proc/inotify").decode()
        assert "enqueued:" in text

    def test_proc_trace_matches_status_text(self, k, proc):
        text = read_all(k, proc, "/proc/trace").decode()
        assert "tracing: off" in text
        assert "+syscall_enter" in text


class TestTracePipe:
    def test_tail_through_epoll(self, k, proc):
        trace_ctl(k, proc, "mask=syscall_enter,syscall_exit\non\n")
        tfd = k.call(proc, "openat", AT_FDCWD, "/proc/trace_pipe",
                     O_RDONLY | O_NONBLOCK, 0)
        ep = k.call(proc, "epoll_create1", 0)
        k.call(proc, "epoll_ctl", ep, EPOLL_CTL_ADD, tfd, EPOLLIN, tfd)
        events = k.call(proc, "epoll_pwait", ep, 8, 1_000_000_000)
        assert events and events[0][0] == tfd
        assert events[0][1] & EPOLLIN
        data = k.call(proc, "read", tfd, 65536)
        assert len(data) % TRACE_RECORD_SIZE == 0 and data
        recs = decode_records(data)
        # the stream starts at our own ctl write: openat enter first
        assert recs[0].point == "syscall_exit"  # ctl write's exit record
        assert all(r.pid == proc.pid for r in recs)
        trace_ctl(k, proc, "off\n")

    def test_pipe_empty_after_mask_none(self, k, proc):
        trace_ctl(k, proc, "mask=none\non\nclear\n")
        tfd = k.call(proc, "openat", AT_FDCWD, "/proc/trace_pipe",
                     O_RDONLY | O_NONBLOCK, 0)
        with pytest.raises(KernelError) as e:
            k.call(proc, "read", tfd, 4096)
        assert "EAGAIN" in str(e.value)
        trace_ctl(k, proc, "off\n")

    def test_ablated_kernel_has_no_trace_files(self):
        k = Kernel(trace="off")
        proc = k.create_process(["t"], {})
        assert k.trace is None
        for path in ("/proc/trace", "/proc/trace_ctl", "/proc/trace_pipe"):
            with pytest.raises(KernelError):
                k.call(proc, "openat", AT_FDCWD, path, O_RDONLY, 0)
        # but the plain /proc surface is still there
        assert read_all(k, proc, "/proc/sched_debug")
        assert b"crossings:" in read_all(k, proc, "/proc/uring")

    def test_trace_on_from_boot(self):
        k = Kernel(trace="on")
        try:
            proc = k.create_process(["t"], {})
            k.call(proc, "getpid")
            assert len(k.trace.buffer) > 0
        finally:
            k.trace.close()


# --------------------------------------------------------------------------
# the metrics layer
# --------------------------------------------------------------------------

class TestTraceReport:
    def test_percentiles_from_log2_buckets(self):
        from repro.metrics import hist_percentile
        buckets = [0] * 64
        buckets[5] = 90   # 90 samples ~24 ns
        buckets[10] = 10  # 10 samples ~768 ns
        p50 = hist_percentile(buckets, 0.50)
        p99 = hist_percentile(buckets, 0.99)
        assert p50 == 24 and p99 == 768
        assert hist_percentile([0] * 64, 0.99) == 0

    def test_latency_table_renders(self, k, proc):
        from repro.metrics import latency_rows, latency_table
        for _ in range(10):
            k.call(proc, "getpid")
        rows = latency_rows(k.trace)
        names = [r[0] for r in rows]
        assert "getpid" in names
        text = latency_table(k.trace)
        assert "svc p99 ns" in text and "getpid" in text

    def test_event_summary_per_subsystem(self, k, proc):
        from repro.metrics import render_trace_report, summarize_events
        k.trace.set_mask({"syscall_enter", "syscall_exit", "sched_switch"})
        k.trace.enable()
        k.call(proc, "getpid")
        k.trace.disable()
        data = k.trace.buffer.read_step(65536)
        summary = summarize_events(decode_records(data))
        assert summary["syscall"]["events"] >= 2
        assert summary["syscall"]["syscall_enter"] >= 1
        report = render_trace_report(k.trace, data)
        assert "syscall latency" in report and "subsystem" in report

    def test_summary_counts_drop_markers(self):
        from repro.metrics import summarize_events
        t = KernelTrace(capacity=2)
        t.enable()
        for _ in range(5):
            t.emit("net_drop")
        recs = decode_records(t.buffer.read_step(4096))
        summary = summarize_events(recs)
        assert summary["net"]["events"] == 2
        assert summary["other"]["dropped"] == 3

    def test_counter_snapshot_single_source(self, k, proc):
        from repro.metrics import counter_snapshot
        k.call(proc, "getpid")
        snap = dict(counter_snapshot(k))
        assert snap.get("sched.switch") == k.trace.counters["sched.switch"]
        assert counter_snapshot(Kernel(trace="off")) == []


# --------------------------------------------------------------------------
# the ktop guest app
# --------------------------------------------------------------------------

class TestKtopGuest:
    def test_ktop_reads_proc_and_tails_pipe(self):
        from repro.apps import build
        from repro.wali import WaliRuntime

        rt = WaliRuntime()
        wp = rt.load(build("ktop"), argv=["ktop", "6"])
        assert wp.run() == 0
        out = rt.kernel.console_output()
        assert b"ktop ok sched=1 uring=1 records=" in out
        assert b"aligned=1" in out
        records = int(out.split(b"records=")[1].split(b" ")[0])
        assert records >= 6
        # ktop switched the tracer off on its way out
        assert rt.kernel.trace.enabled is False
        rt.kernel.trace.close()


# --------------------------------------------------------------------------
# packet capture: to_pcap golden file (--pcap on the examples)
# --------------------------------------------------------------------------

class TestPcapGolden:
    def _fixed_tap(self):
        from repro.kernel.net.base import PacketRecord, PacketTap
        tap = PacketTap()
        tap.records.append(PacketRecord(
            1_000_000_000, "data", ("127.0.0.1", 40001), ("127.0.0.1", 80),
            b"GET / HTTP/1.0\r\n\r\n"))
        tap.records.append(PacketRecord(
            1_000_250_000, "dgram", ("127.0.0.1", 5353), ("127.0.0.1", 53),
            b"query"))
        tap.records.append(PacketRecord(
            1_001_500_000, "eof", ("127.0.0.1", 40001), ("127.0.0.1", 80),
            b""))
        return tap

    def test_to_pcap_matches_golden(self):
        golden = os.path.join(os.path.dirname(__file__), "data",
                              "tap_golden.pcap")
        with open(golden, "rb") as f:
            assert self._fixed_tap().to_pcap() == f.read()

    def test_pcap_structure(self):
        data = self._fixed_tap().to_pcap()
        magic, vmaj, vmin, tz, sig, snaplen, link = struct.unpack_from(
            "<IHHiIII", data, 0)
        assert (magic, vmaj, vmin, link) == (0xA1B2C3D4, 2, 4, 147)
        # first record header: ts 1.000000s, 18-byte payload
        sec, usec, caplen, origlen = struct.unpack_from("<IIII", data, 24)
        assert (sec, usec, caplen, origlen) == (1, 0, 18, 18)
        assert data[40:58] == b"GET / HTTP/1.0\r\n\r\n"
        # total size: 24 global + 3 * (16 + payload)
        assert len(data) == 24 + 3 * 16 + 18 + 5 + 0
