"""io_uring subsystem tests: ring lifecycle, batched submission, deferred
completion on waitqueues, SQ-full and CQ-overflow semantics, link chains
with failure short-circuiting, ET-style single completion per arrival,
POLL_ADD/TIMEOUT ops, and the WALI guest-facing ring (shared ring memory,
one crossing per batch)."""

import time

import pytest

from repro.kernel import (
    AF_INET, EPOLL_CTL_ADD, EPOLLHUP, EPOLLIN, EPOLLOUT,
    IORING_ACCEPT_MULTISHOT, IORING_CQE_BUFFER_SHIFT, IORING_CQE_F_BUFFER,
    IORING_CQE_F_MORE, IORING_ENTER_SQ_WAKEUP, IORING_OP_ACCEPT,
    IORING_OP_NOP, IORING_OP_POLL_ADD, IORING_OP_READ, IORING_OP_READ_FIXED,
    IORING_OP_RECV, IORING_OP_SEND, IORING_OP_TIMEOUT, IORING_OP_WRITE,
    IORING_RECV_MULTISHOT, IORING_REGISTER_BUFFERS, IORING_SETUP_SQPOLL,
    IOSQE_CQE_SKIP_SUCCESS, IOSQE_FIXED_BUFFER, IOSQE_IO_LINK, Kernel,
    KernelError, SOCK_STREAM, SQE,
)
from repro.kernel.errno import (
    EBADF, ECANCELED, EINVAL, EPIPE, ETIME,
)

POLLIN = 1


# every ring-serving test runs twice: on an idle kernel, and preempted
# every 50 us by two CPU-bound spinner guests on a 2-slot scheduler —
# deferred completions and readiness parking must survive arbitrary
# preemption between submit, wakeup, and reap
@pytest.fixture(params=[
    pytest.param(False, id="idle"),
    pytest.param(True, id="contended"),
])
def kern(request):
    if not request.param:
        return Kernel()
    from repro.kernel import BackgroundSpinners

    k = Kernel(sched="cpus=2,slice_us=50")
    spinners = BackgroundSpinners(k, n=2).start()
    request.addfinalizer(spinners.stop)
    return k


@pytest.fixture
def proc(kern):
    return kern.create_process(["uring"])


def _pair(kern, proc):
    return kern.call(proc, "socketpair", AF_INET, SOCK_STREAM)


def _enter(kern, proc, fd, sqes=(), min_complete=0, timeout_ns=None,
           max_cqes=None, flags=0):
    return kern.call(proc, "io_uring_enter", fd, sqes, min_complete,
                     timeout_ns, max_cqes, flags)


class TestRingBasics:
    def test_setup_rounds_to_power_of_two(self, kern, proc):
        fd = kern.call(proc, "io_uring_setup", 5)
        ring = proc.fdtable.get(fd).obj
        assert ring.sq_entries == 8
        assert ring.cq_entries == 16

    def test_setup_rejects_bad_entries(self, kern, proc):
        for bad in (0, -1, 1 << 20):
            with pytest.raises(KernelError) as exc:
                kern.call(proc, "io_uring_setup", bad)
            assert exc.value.errno == EINVAL

    def test_enter_on_non_ring_fd_is_einval(self, kern, proc):
        a, _b = _pair(kern, proc)
        with pytest.raises(KernelError) as exc:
            _enter(kern, proc, a, [SQE(IORING_OP_NOP)])
        assert exc.value.errno == EINVAL

    def test_nop_batch_one_cqe_per_sqe(self, kern, proc):
        fd = kern.call(proc, "io_uring_setup", 8)
        sub, cqes = _enter(kern, proc, fd,
                           [SQE(IORING_OP_NOP, user_data=i)
                            for i in range(5)], 5)
        assert sub == 5
        assert [(c.user_data, c.res) for c in cqes] == \
            [(i, 0) for i in range(5)]

    def test_unknown_opcode_completes_with_einval(self, kern, proc):
        fd = kern.call(proc, "io_uring_setup", 8)
        _sub, cqes = _enter(kern, proc, fd, [SQE(99, user_data=1)], 1)
        assert cqes[0].res == -EINVAL

    def test_bad_fd_completes_with_ebadf(self, kern, proc):
        fd = kern.call(proc, "io_uring_setup", 8)
        _sub, cqes = _enter(kern, proc, fd,
                            [SQE(IORING_OP_READ, fd=999, length=4,
                                 user_data=1)], 1)
        assert cqes[0].res == -EBADF

    def test_register_ring_region_and_unknown_opcode(self, kern, proc):
        from repro.kernel import IORING_REGISTER_RING

        fd = kern.call(proc, "io_uring_setup", 8)
        kern.call(proc, "io_uring_register", fd, IORING_REGISTER_RING,
                  0xABC)
        assert proc.fdtable.get(fd).obj.registrations[
            IORING_REGISTER_RING] == 0xABC
        # unsupported registrations fail loudly (guests must fall back)
        with pytest.raises(KernelError) as exc:
            kern.call(proc, "io_uring_register", fd, 7, 0xABC)
        assert exc.value.errno == EINVAL


class TestRingIO:
    def test_inline_recv_send(self, kern, proc):
        fd = kern.call(proc, "io_uring_setup", 8)
        a, b = _pair(kern, proc)
        kern.call(proc, "sendto", b, b"already here")
        _sub, cqes = _enter(kern, proc, fd,
                            [SQE(IORING_OP_RECV, fd=a, length=64,
                                 user_data=1)], 1)
        assert cqes[0].res == 12 and cqes[0].data == b"already here"

    def test_deferred_recv_completes_on_readiness(self, kern, proc):
        """An op that would block parks on the waitqueue and completes
        when the data arrives — the deferred-completion core."""
        fd = kern.call(proc, "io_uring_setup", 8)
        a, b = _pair(kern, proc)
        sub, cqes = _enter(kern, proc, fd,
                           [SQE(IORING_OP_RECV, fd=a, length=64,
                                user_data=7)])
        assert sub == 1 and cqes == []  # parked, nothing to reap
        kern.call(proc, "sendto", b, b"later")
        _sub, cqes = _enter(kern, proc, fd, [], 1,
                            timeout_ns=2_000_000_000)
        assert [(c.user_data, c.res, c.data) for c in cqes] == \
            [(7, 5, b"later")]

    def test_et_style_single_completion_per_arrival(self, kern, proc):
        """One data arrival produces exactly one CQE, however many
        enters happen afterwards (no level-triggered duplicates)."""
        fd = kern.call(proc, "io_uring_setup", 8)
        a, b = _pair(kern, proc)
        _enter(kern, proc, fd, [SQE(IORING_OP_RECV, fd=a, length=4,
                                    user_data=1)])
        kern.call(proc, "sendto", b, b"xxxxyyyy")  # more than one read's worth
        _sub, cqes = _enter(kern, proc, fd, [], 1, 2_000_000_000)
        assert len(cqes) == 1 and cqes[0].res == 4
        # buffered bytes remain, but no RECV is armed: no spurious CQE
        for _ in range(3):
            _sub, cqes = _enter(kern, proc, fd, [], 0)
            assert cqes == []

    def test_accept_installs_fd_and_parks_until_connect(self, kern, proc):
        fd = kern.call(proc, "io_uring_setup", 8)
        lfd = kern.call(proc, "socket", AF_INET, SOCK_STREAM)
        kern.call(proc, "bind", lfd, ("127.0.0.1", 9301))
        kern.call(proc, "listen", lfd, 8)
        _enter(kern, proc, fd, [SQE(IORING_OP_ACCEPT, fd=lfd,
                                    user_data=5)])
        cfd = kern.call(proc, "socket", AF_INET, SOCK_STREAM)
        kern.call(proc, "connect", cfd, ("127.0.0.1", 9301))
        _sub, cqes = _enter(kern, proc, fd, [], 1, 2_000_000_000)
        assert cqes[0].user_data == 5 and cqes[0].res > 0
        sfd = cqes[0].res
        kern.call(proc, "sendto", cfd, b"through accepted fd")
        data, _ = kern.call(proc, "recvfrom", sfd, 64)
        assert data == b"through accepted fd"

    def test_write_epipe_has_no_sigpipe(self, kern, proc):
        """Ring sends fail with -EPIPE but never raise SIGPIPE (the
        MSG_NOSIGNAL-style discipline io_uring uses)."""
        fd = kern.call(proc, "io_uring_setup", 8)
        a, b = _pair(kern, proc)
        kern.call(proc, "shutdown", a, 1)  # SHUT_WR
        _sub, cqes = _enter(kern, proc, fd,
                            [SQE(IORING_OP_SEND, fd=a, data=b"nope",
                                 user_data=1)], 1)
        assert cqes[0].res == -EPIPE
        assert not proc.pending.bits  # no pending SIGPIPE

    def test_pinned_file_survives_fd_close(self, kern, proc):
        """A parked op holds the open-file description: closing the fd
        completes the op with EOF semantics instead of redirecting it
        to whatever reuses the number."""
        fd = kern.call(proc, "io_uring_setup", 8)
        a, b = _pair(kern, proc)
        _enter(kern, proc, fd, [SQE(IORING_OP_RECV, fd=a, length=16,
                                    user_data=3)])
        kern.call(proc, "close", b)  # peer gone -> EOF on a
        _sub, cqes = _enter(kern, proc, fd, [], 1, 2_000_000_000)
        assert [(c.user_data, c.res) for c in cqes] == [(3, 0)]

    def test_skip_success_suppresses_only_successes(self, kern, proc):
        fd = kern.call(proc, "io_uring_setup", 8)
        a, b = _pair(kern, proc)
        _sub, cqes = _enter(kern, proc, fd,
                            [SQE(IORING_OP_SEND, fd=a, data=b"ok",
                                 user_data=1,
                                 flags=IOSQE_CQE_SKIP_SUCCESS)], 0)
        assert cqes == []  # success: no CQE
        kern.call(proc, "shutdown", a, 1)
        _sub, cqes = _enter(kern, proc, fd,
                            [SQE(IORING_OP_SEND, fd=a, data=b"no",
                                 user_data=2,
                                 flags=IOSQE_CQE_SKIP_SUCCESS)], 1)
        assert [(c.user_data, c.res) for c in cqes] == [(2, -EPIPE)]


class TestRingLimits:
    def test_sq_full_rejects_oversized_batch(self, kern, proc):
        fd = kern.call(proc, "io_uring_setup", 4)  # SQ holds 4
        with pytest.raises(KernelError) as exc:
            _enter(kern, proc, fd,
                   [SQE(IORING_OP_NOP, user_data=i) for i in range(5)])
        assert exc.value.errno == EINVAL
        # a ring-sized batch is fine
        sub, _ = _enter(kern, proc, fd,
                        [SQE(IORING_OP_NOP, user_data=i) for i in range(4)])
        assert sub == 4

    def test_cq_overflow_backlogs_without_loss(self, kern, proc):
        fd = kern.call(proc, "io_uring_setup", 4)  # CQ holds 8
        ring = proc.fdtable.get(fd).obj
        for batch in range(3):  # 12 completions into an 8-slot CQ
            _enter(kern, proc, fd,
                   [SQE(IORING_OP_NOP, user_data=batch * 4 + i)
                    for i in range(4)], 0, None, 0)  # reap nothing
        assert ring.overflow == 4
        assert ring.overflow_pending
        # nothing is dropped: a ring-sized reap takes the oldest eight
        # and flushes the backlog into the freed slots...
        _sub, cqes = _enter(kern, proc, fd, [], 0, None, 8)
        assert [c.user_data for c in cqes] == list(range(8))
        assert not ring.overflow_pending  # backlog flushed into the ring
        # ...and the next reap hands over the rest, still in order
        _sub, cqes = _enter(kern, proc, fd, [], 0, None, 8)
        assert [c.user_data for c in cqes] == [8, 9, 10, 11]
        assert ring.overflow == 4  # the counter keeps the history

    def test_enter_timeout_returns_partial(self, kern, proc):
        fd = kern.call(proc, "io_uring_setup", 8)
        a, _b = _pair(kern, proc)
        t0 = time.monotonic()
        _sub, cqes = _enter(kern, proc, fd,
                            [SQE(IORING_OP_RECV, fd=a, length=4,
                                 user_data=1)], 1,
                            timeout_ns=30_000_000)
        assert cqes == []  # nothing arrived inside the timeout
        assert 0.02 < time.monotonic() - t0 < 1.0


class TestRingLinks:
    def test_linked_ops_run_in_order(self, kern, proc):
        fd = kern.call(proc, "io_uring_setup", 8)
        a, b = _pair(kern, proc)
        sqes = [SQE(IORING_OP_SEND, fd=a, data=b"pong", user_data=1,
                    flags=IOSQE_IO_LINK),
                SQE(IORING_OP_RECV, fd=b, length=16, user_data=2)]
        _sub, cqes = _enter(kern, proc, fd, sqes, 2, 2_000_000_000)
        assert [(c.user_data, c.res) for c in cqes] == [(1, 4), (2, 4)]
        assert cqes[1].data == b"pong"

    def test_failed_link_cancels_the_rest(self, kern, proc):
        """A failing op short-circuits its chain: followers complete
        with -ECANCELED and never run."""
        fd = kern.call(proc, "io_uring_setup", 8)
        a, b = _pair(kern, proc)
        sqes = [SQE(IORING_OP_READ, fd=999, length=4, user_data=1,
                    flags=IOSQE_IO_LINK),
                SQE(IORING_OP_SEND, fd=a, data=b"never", user_data=2,
                    flags=IOSQE_IO_LINK),
                SQE(IORING_OP_SEND, fd=a, data=b"ever", user_data=3)]
        _sub, cqes = _enter(kern, proc, fd, sqes, 3)
        assert [(c.user_data, c.res) for c in cqes] == \
            [(1, -EBADF), (2, -ECANCELED), (3, -ECANCELED)]
        # the cancelled sends really were skipped: peer got nothing
        with pytest.raises(KernelError):
            kern.call(proc, "fcntl", b, 4, 0o4000)  # F_SETFL O_NONBLOCK
            kern.call(proc, "recvfrom", b, 16)

    def test_failure_only_breaks_its_own_chain(self, kern, proc):
        fd = kern.call(proc, "io_uring_setup", 8)
        sqes = [SQE(IORING_OP_READ, fd=999, length=4, user_data=1,
                    flags=IOSQE_IO_LINK),
                SQE(IORING_OP_NOP, user_data=2),
                SQE(IORING_OP_NOP, user_data=3)]  # separate chain
        _sub, cqes = _enter(kern, proc, fd, sqes, 3)
        results = {c.user_data: c.res for c in cqes}
        assert results == {1: -EBADF, 2: -ECANCELED, 3: 0}

    def test_deferred_link_continues_after_park(self, kern, proc):
        """A chain whose head parks resumes where it left off: the
        linked follower runs only after the head completes."""
        fd = kern.call(proc, "io_uring_setup", 8)
        a, b = _pair(kern, proc)
        sqes = [SQE(IORING_OP_RECV, fd=a, length=16, user_data=1,
                    flags=IOSQE_IO_LINK),
                SQE(IORING_OP_SEND, fd=a, data=b"reply", user_data=2)]
        _sub, cqes = _enter(kern, proc, fd, sqes)
        assert cqes == []  # head parked; follower must not have run
        kern.call(proc, "sendto", b, b"request")
        _sub, cqes = _enter(kern, proc, fd, [], 2, 2_000_000_000)
        assert [(c.user_data, c.res) for c in cqes] == [(1, 7), (2, 5)]
        data, _ = kern.call(proc, "recvfrom", b, 16)
        assert data == b"reply"


class TestRingPollTimeout:
    def test_poll_add_single_shot(self, kern, proc):
        fd = kern.call(proc, "io_uring_setup", 8)
        a, b = _pair(kern, proc)
        _enter(kern, proc, fd, [SQE(IORING_OP_POLL_ADD, fd=a,
                                    off=EPOLLIN, user_data=1)])
        kern.call(proc, "sendto", b, b"ready")
        _sub, cqes = _enter(kern, proc, fd, [], 1, 2_000_000_000)
        assert cqes[0].user_data == 1 and cqes[0].res & EPOLLIN
        # single shot: readiness persists but no second CQE appears
        _sub, cqes = _enter(kern, proc, fd, [], 0)
        assert cqes == []

    def test_timeout_op_fires_with_etime(self, kern, proc):
        fd = kern.call(proc, "io_uring_setup", 8)
        t0 = time.monotonic()
        _sub, cqes = _enter(kern, proc, fd,
                            [SQE(IORING_OP_TIMEOUT, off=30_000_000,
                                 user_data=9)], 1, 2_000_000_000)
        assert [(c.user_data, c.res) for c in cqes] == [(9, -ETIME)]
        assert time.monotonic() - t0 >= 0.025

    def test_ring_fd_is_epollable(self, kern, proc):
        """A ring fd publishes EPOLLIN when CQEs are waiting, so it can
        nest inside an epoll set like any readiness source."""
        fd = kern.call(proc, "io_uring_setup", 8)
        a, b = _pair(kern, proc)
        ep = kern.call(proc, "epoll_create1", 0)
        kern.call(proc, "epoll_ctl", ep, EPOLL_CTL_ADD, fd, EPOLLIN)
        kern.call(proc, "epoll_pwait", ep, 8, timeout_ns=0)  # level drain
        _enter(kern, proc, fd, [SQE(IORING_OP_RECV, fd=a, length=8,
                                    user_data=1)])
        kern.call(proc, "sendto", b, b"wake")
        ready = kern.call(proc, "epoll_pwait", ep, 8,
                          timeout_ns=2_000_000_000)
        assert ready and ready[0][0] == fd and ready[0][1] & EPOLLIN
        _sub, cqes = _enter(kern, proc, fd, [], 1)
        assert cqes[0].res == 4

    def test_close_cancels_parked_ops(self, kern, proc):
        fd = kern.call(proc, "io_uring_setup", 8)
        a, b = _pair(kern, proc)
        sock_wq = proc.fdtable.get(a).sock.wq
        before = len(sock_wq)
        _enter(kern, proc, fd, [SQE(IORING_OP_RECV, fd=a, length=8,
                                    user_data=1)])
        assert len(sock_wq) == before + 1  # parked subscriber
        kern.call(proc, "close", fd)
        assert len(sock_wq) == before  # unsubscribed on ring close


class TestRingThroughWali:
    """The ring end-to-end through the guest: WALI imports, shared ring
    memory in the guest address space, one enter crossing per batch."""

    def _echo(self, net, nclients=20, rounds=5):
        from repro.apps import build
        from repro.wali import WaliRuntime

        rt = WaliRuntime(kernel=Kernel(net_backend=net))
        wp = rt.load(build("event_echo"),
                     argv=["event_echo", str(nclients), str(rounds), "-u"])
        assert wp.run() == 0
        want = f"echoes={nclients * rounds}".encode()
        assert want in rt.kernel.console_output(), \
            rt.kernel.console_output()
        return wp

    def test_event_echo_ring_mode_loopback(self):
        wp = self._echo("loopback")
        counts = wp.host.call_counts
        assert counts["io_uring_setup"] == 1
        assert counts["io_uring_enter"] >= 1
        # the point of the ring: no per-op read/write/accept crossings
        # (the few writes left are the final console prints)
        assert counts.get("read", 0) == 0
        assert counts.get("accept4", 0) == 0
        assert counts.get("epoll_pwait", 0) == 0
        assert counts.get("write", 0) <= 3

    def test_event_echo_ring_mode_wan(self):
        """Identical guest binary over an impaired link: parked ops
        complete on delayed readiness, the echo count is unchanged."""
        self._echo("wan:latency_ms=1,jitter_ms=0.3,seed=13",
                   nclients=8, rounds=3)

    def test_event_echo_ring_batches_crossings(self):
        """The crossing economics at 100 connections: the ring serves
        each echo in far fewer guest<->host crossings than the epoll
        mode spends on epoll_pwait + read + write alone."""
        from repro.apps import build
        from repro.wali import WaliRuntime

        totals = {}
        for label, argv in (
                ("epoll", ["event_echo", "100", "3"]),
                ("ring", ["event_echo", "100", "3", "-u"])):
            rt = WaliRuntime()
            wp = rt.load(build("event_echo"), argv=argv)
            assert wp.run() == 0
            assert b"echoes=300" in rt.kernel.console_output()
            totals[label] = sum(wp.host.call_counts.values())
        assert totals["ring"] * 3 <= totals["epoll"], totals

    def test_memcached_ring_serving_mode(self):
        """mini-memcached -u serves concurrent clients through the ring
        with zero clones and coalesced replies."""
        import time as _t

        from repro.apps import build
        from repro.wali import WaliRuntime

        rt = WaliRuntime()
        server = rt.load(build("mini_memcached"),
                         argv=["memcached", "11213", "-u"])
        server.start_in_thread()
        for _ in range(500):
            if b"ready" in rt.kernel.console_output():
                break
            _t.sleep(0.01)
        else:
            pytest.fail("server did not come up")

        k = rt.kernel
        cp = k.create_process(["pyclient"])
        fds = []
        for i in range(30):
            fd = k.call(cp, "socket", AF_INET, SOCK_STREAM)
            k.call(cp, "connect", fd, ("127.0.0.1", 11213))
            fds.append(fd)

        def recvline(fd):
            out = b""
            while not out.endswith(b"\n"):
                data, _ = k.call(cp, "recvfrom", fd, 256)
                if not data:
                    break
                out += data
            return out.decode().strip()

        # all requests outstanding before any reply is read
        for i, fd in enumerate(fds):
            k.call(cp, "sendto", fd, f"set k{i} v{i}\n".encode())
        for fd in fds:
            assert recvline(fd) == "STORED"
        for i, fd in enumerate(fds):
            k.call(cp, "sendto", fd, f"get k{i}\n".encode())
        for i, fd in enumerate(fds):
            assert recvline(fd) == f"VALUE v{i}"
        # single-threaded ring dispatch: no worker LWPs, no epoll
        assert k.syscall_counts.get("clone", 0) == 0
        assert k.syscall_counts.get("epoll_pwait", 0) == 0
        assert k.syscall_counts.get("io_uring_enter", 0) >= 1
        k.call(cp, "sendto", fds[0], b"shutdown\n")
        assert recvline(fds[0]) == "BYE"
        server.join(5)

    def test_memcached_ring_reply_overflow_keeps_wire_order(self):
        """A pipelined burst whose replies overflow the per-connection
        coalescing slot must still arrive in protocol order (buffered
        fragments flush before any direct-write fallback)."""
        import time as _t

        from repro.apps import build
        from repro.wali import WaliRuntime

        rt = WaliRuntime()
        server = rt.load(build("mini_memcached"),
                         argv=["memcached", "11214", "-u"])
        server.start_in_thread()
        for _ in range(500):
            if b"ready" in rt.kernel.console_output():
                break
            _t.sleep(0.01)
        k = rt.kernel
        cp = k.create_process(["pyclient"])
        fd = k.call(cp, "socket", AF_INET, SOCK_STREAM)
        k.call(cp, "connect", fd, ("127.0.0.1", 11214))
        k.call(cp, "sendto", fd, b"set big 0123456789012345678901234\n")
        out = b""
        while not out.endswith(b"STORED\n"):
            data, _ = k.call(cp, "recvfrom", fd, 256)
            out += data
        # 12 pipelined gets -> ~12 x 32B of replies > the 256B slot
        k.call(cp, "sendto", fd, b"get big\n" * 12)
        want = b"VALUE 0123456789012345678901234\n" * 12
        out = b""
        while len(out) < len(want):
            data, _ = k.call(cp, "recvfrom", fd, 1024)
            if not data:
                break
            out += data
        assert out == want
        k.call(cp, "sendto", fd, b"shutdown\n")
        server.join(5)

    def test_guest_sq_cq_counters_visible_in_ring_memory(self):
        """The guest reads its own progress from the shared ring header
        (sq/cq heads and tails) without extra crossings."""
        from repro.apps import with_libc
        from repro.cc import compile_source
        from repro.wali import WaliRuntime

        src = r"""
export func _start() {
    if (uring_init(4) < 0) { exit(1); }
    if (uring_sq_pending() != 0) { exit(2); }
    uring_sqe(IORING_OP_NOP, -1, 0, 0, 11, 0);
    uring_sqe(IORING_OP_NOP, -1, 0, 0, 12, 0);
    if (uring_sq_pending() != 2) { exit(3); }
    if (uring_reap_batch(2, 1000) != 2) { exit(4); }
    if (uring_sq_pending() != 0) { exit(5); }
    if (uring_cqe_data(0) != 11) { exit(6); }
    if (uring_cqe_data(1) != 12) { exit(7); }
    uring_cq_advance(2);
    if (uring_cq_ready() != 0) { exit(8); }
    // SQ-full is visible guest-side without a crossing
    uring_sqe(IORING_OP_NOP, -1, 0, 0, 1, 0);
    uring_sqe(IORING_OP_NOP, -1, 0, 0, 2, 0);
    uring_sqe(IORING_OP_NOP, -1, 0, 0, 3, 0);
    uring_sqe(IORING_OP_NOP, -1, 0, 0, 4, 0);
    if (uring_sqe(IORING_OP_NOP, -1, 0, 0, 5, 0) != -1) { exit(9); }
    exit(0);
}
"""
        rt = WaliRuntime()
        wp = rt.load(compile_source(with_libc(src), name="ringmem"),
                     argv=["ringmem"])
        assert wp.run() == 0

    def test_guest_overflow_flag_lifecycle(self):
        """IORING_SQ_CQ_OVERFLOW in the shared header: raised while the
        kernel holds backlogged completions, still raised after a partial
        drain refills the ring from the backlog, cleared only once a reap
        fully drains the backlog — all observed guest-side with loads."""
        from repro.apps import with_libc
        from repro.cc import compile_source
        from repro.wali import WaliRuntime

        src = r"""
export func _start() {
    if (uring_init(4) < 0) { exit(1); }       // sq 4, cq 8
    // 5 batches of 4 NOPs, never advancing the CQ head: 8 land in the
    // guest ring, 8 fill the kernel-side ring, 4 overflow into backlog
    var b: i32 = 0;
    while (b < 5) {
        var i: i32 = 0;
        while (i < 4) {
            uring_sqe(IORING_OP_NOP, -1, 0, 0, b * 4 + i, 0);
            i = i + 1;
        }
        uring_submit();
        b = b + 1;
    }
    if (uring_cq_ready() != 8) { exit(2); }
    if ((uring_ring_flags() & IORING_SQ_CQ_OVERFLOW) == 0) { exit(3); }
    // partial drain: the 2 freed slots refill from the kernel side but
    // a backlog remains, so the flag must stay up
    uring_cq_advance(2);
    uring_submit();
    if (uring_cq_ready() != 8) { exit(4); }
    if ((uring_ring_flags() & IORING_SQ_CQ_OVERFLOW) == 0) { exit(5); }
    // full drain: the backlog empties into the kernel ring, flag clears
    uring_cq_advance(8);
    uring_submit();
    if (uring_cq_ready() != 8) { exit(6); }
    if ((uring_ring_flags() & IORING_SQ_CQ_OVERFLOW) != 0) { exit(7); }
    // the stragglers arrive; the overflow counter records all 4
    uring_cq_advance(8);
    uring_submit();
    if (uring_cq_ready() != 2) { exit(8); }
    if (load32(__uring_base + 24) != 4) { exit(9); }
    exit(0);
}
"""
        rt = WaliRuntime()
        wp = rt.load(compile_source(with_libc(src), name="ringovf"),
                     argv=["ringovf"])
        assert wp.run() == 0


class TestMultishot:
    """Multishot accept/recv: one armed SQE, a CQE per event, each
    flagged IORING_CQE_F_MORE until the terminal completion."""

    def test_accept_posts_cqe_per_arrival(self, kern, proc):
        rfd = kern.call(proc, "io_uring_setup", 8)
        lfd = kern.call(proc, "socket", AF_INET, SOCK_STREAM)
        kern.call(proc, "bind", lfd, ("127.0.0.1", 9321))
        kern.call(proc, "listen", lfd, 16)
        sub, cqes = _enter(kern, proc, rfd,
                           [SQE(IORING_OP_ACCEPT, fd=lfd,
                                off=IORING_ACCEPT_MULTISHOT, user_data=5)])
        assert (sub, cqes) == (1, [])
        seen = []
        for wave in (3, 2):  # the SQE stays armed between waves
            for _ in range(wave):
                c = kern.call(proc, "socket", AF_INET, SOCK_STREAM)
                kern.call(proc, "connect", c, ("127.0.0.1", 9321))
            got = []
            deadline = time.monotonic() + 10
            while len(got) < wave and time.monotonic() < deadline:
                _s, batch = _enter(kern, proc, rfd, (), 1, 500_000_000)
                got.extend(batch)
            assert len(got) == wave, got
            for c in got:
                assert c.user_data == 5
                assert c.res > 0
                assert c.flags & IORING_CQE_F_MORE
            seen.extend(c.res for c in got)
        assert len(set(seen)) == 5  # five distinct connection fds

    def test_recv_posts_cqe_per_message_then_terminal_eof(self, kern, proc):
        rfd = kern.call(proc, "io_uring_setup", 8)
        a, b = _pair(kern, proc)
        sub, cqes = _enter(kern, proc, rfd,
                           [SQE(IORING_OP_RECV, fd=a, length=64,
                                off=IORING_RECV_MULTISHOT, user_data=7)])
        assert (sub, cqes) == (1, [])
        for i in range(3):
            kern.call(proc, "sendto", b, b"msg%d" % i)
            _s, got = _enter(kern, proc, rfd, (), 1, 2_000_000_000)
            assert len(got) == 1
            assert (got[0].user_data, got[0].res) == (7, 4)
            assert got[0].data == b"msg%d" % i
            assert got[0].flags & IORING_CQE_F_MORE
        kern.call(proc, "close", b)  # EOF terminates the armed op
        _s, got = _enter(kern, proc, rfd, (), 1, 2_000_000_000)
        assert [(c.user_data, c.res) for c in got] == [(7, 0)]
        assert not (got[0].flags & IORING_CQE_F_MORE)

    def test_recv_gates_one_unreaped_completion(self, kern, proc):
        """At most one unreaped data CQE per armed multishot recv: the
        next message is held until the guest reaps the previous one."""
        rfd = kern.call(proc, "io_uring_setup", 8)
        a, b = _pair(kern, proc)
        _enter(kern, proc, rfd,
               [SQE(IORING_OP_RECV, fd=a, length=64,
                    off=IORING_RECV_MULTISHOT, user_data=3)])
        kern.call(proc, "sendto", b, b"aa")
        _enter(kern, proc, rfd, (), 1, 2_000_000_000, 0)  # wait, reap none
        kern.call(proc, "sendto", b, b"bb")
        ring = proc.fdtable.get(rfd).obj
        # the second message must not produce a second CQE while the
        # first sits unreaped — the armed op holds a single slot
        _enter(kern, proc, rfd, (), 1, 2_000_000_000, 0)
        assert ring.cq_ready() == 1
        _s, got = _enter(kern, proc, rfd, (), 1)
        assert [c.data for c in got] == [b"aa"]
        # reaping released the gate: the held message now completes
        _s, got = _enter(kern, proc, rfd, (), 1, 2_000_000_000)
        assert [c.data for c in got] == [b"bb"]
        assert got[0].flags & IORING_CQE_F_MORE

    def test_multishot_refuses_link(self, kern, proc):
        rfd = kern.call(proc, "io_uring_setup", 8)
        a, _b = _pair(kern, proc)
        _s, cqes = _enter(kern, proc, rfd, [
            SQE(IORING_OP_RECV, fd=a, length=64, off=IORING_RECV_MULTISHOT,
                flags=IOSQE_IO_LINK, user_data=1),
            SQE(IORING_OP_NOP, user_data=2),
        ], 2)
        assert [(c.user_data, c.res) for c in cqes] == \
            [(1, -EINVAL), (2, -ECANCELED)]


class TestRegisteredBuffers:
    """IORING_REGISTER_BUFFERS: the table is installed once; fixed-buffer
    SQEs name a slot index and complete with IORING_CQE_F_BUFFER."""

    def _ring_with_table(self, kern, proc):
        rfd = kern.call(proc, "io_uring_setup", 8)
        kern.call(proc, "io_uring_register", rfd, IORING_REGISTER_BUFFERS,
                  [(0x1000, 64), (0x2000, 16)], 2)
        return rfd

    def test_read_fixed_completes_into_slot(self, kern, proc):
        rfd = self._ring_with_table(kern, proc)
        a, b = _pair(kern, proc)
        kern.call(proc, "sendto", b, b"fixed!")
        _s, cqes = _enter(kern, proc, rfd,
                          [SQE(IORING_OP_READ_FIXED, fd=a, addr=1,
                               user_data=9)], 1, 2_000_000_000)
        c = cqes[0]
        assert (c.res, c.data) == (6, b"fixed!")
        assert c.addr == 0x2000  # the slot base, resolved from the table
        assert c.flags == IORING_CQE_F_BUFFER | (1 << IORING_CQE_BUFFER_SHIFT)

    def test_fixed_read_truncates_to_slot_length(self, kern, proc):
        rfd = self._ring_with_table(kern, proc)
        a, b = _pair(kern, proc)
        kern.call(proc, "sendto", b, b"x" * 32)
        _s, cqes = _enter(kern, proc, rfd,
                          [SQE(IORING_OP_READ_FIXED, fd=a, addr=1,
                               user_data=1)], 1, 2_000_000_000)
        assert cqes[0].res == 16  # slot 1 holds 16 bytes, never more

    def test_recv_with_fixed_buffer_flag(self, kern, proc):
        rfd = self._ring_with_table(kern, proc)
        a, b = _pair(kern, proc)
        kern.call(proc, "sendto", b, b"hi")
        _s, cqes = _enter(kern, proc, rfd,
                          [SQE(IORING_OP_RECV, fd=a, addr=0, length=64,
                               flags=IOSQE_FIXED_BUFFER, user_data=2)],
                          1, 2_000_000_000)
        c = cqes[0]
        assert (c.res, c.data, c.addr) == (2, b"hi", 0x1000)
        assert c.flags & IORING_CQE_F_BUFFER

    def test_bad_slot_index_completes_einval(self, kern, proc):
        rfd = self._ring_with_table(kern, proc)
        a, b = _pair(kern, proc)
        kern.call(proc, "sendto", b, b"zz")
        _s, cqes = _enter(kern, proc, rfd, [
            SQE(IORING_OP_READ_FIXED, fd=a, addr=7, user_data=1),
            SQE(IORING_OP_SEND, fd=a, addr=7, flags=IOSQE_FIXED_BUFFER,
                user_data=2, data=b"zz"),
        ], 2, 2_000_000_000)
        by_ud = {c.user_data: c.res for c in cqes}
        assert by_ud == {1: -EINVAL, 2: -EINVAL}

    def test_register_validates_table(self, kern, proc):
        rfd = kern.call(proc, "io_uring_setup", 8)
        for bad in ([], [(0x1000, 0)]):
            with pytest.raises(KernelError) as exc:
                kern.call(proc, "io_uring_register", rfd,
                          IORING_REGISTER_BUFFERS, bad, len(bad))
            assert exc.value.errno == EINVAL
        kern.call(proc, "io_uring_register", rfd, IORING_REGISTER_BUFFERS,
                  [(0x3000, 8)], 1)
        assert proc.fdtable.get(rfd).obj.buf_table == [(0x3000, 8)]


class TestSQPoll:
    """IORING_SETUP_SQPOLL: a kernel-side poller task drains the shared
    SQ queue, so a loaded submitter pays zero enter crossings."""

    def _setup(self, kern, proc, idle_ms=200.0):
        fd = kern.call(proc, "io_uring_setup", 8, IORING_SETUP_SQPOLL,
                       idle_ms)
        return fd, proc.fdtable.get(fd).obj

    def test_zero_crossing_submission(self, kern, proc):
        fd, ring = self._setup(kern, proc)
        base = kern.syscall_counts.get("io_uring_enter", 0)
        # the shared-memory analog: the submitter appends SQEs without
        # any syscall, the poller picks them up
        for i in range(10):
            ring.sq_queue.append(SQE(IORING_OP_NOP, user_data=i))
        got = []
        deadline = time.monotonic() + 10
        while len(got) < 10 and time.monotonic() < deadline:
            got.extend(ring.reap(16))
            time.sleep(0.002)
        assert sorted(c.user_data for c in got) == list(range(10))
        assert kern.syscall_counts.get("io_uring_enter", 0) == base
        kern.call(proc, "close", fd)

    def test_poller_is_a_scheduled_kernel_task(self, kern, proc):
        fd, ring = self._setup(kern, proc)
        poller = ring.sqpoll
        assert poller.alive
        assert poller.proc.pid in kern.processes
        assert poller.proc.argv == ["iou-sqp"]
        for _ in range(200):
            ring.sq_queue.append(
                SQE(IORING_OP_NOP, flags=IOSQE_CQE_SKIP_SUCCESS))
        deadline = time.monotonic() + 10
        while ring.sq_pending() and time.monotonic() < deadline:
            time.sleep(0.002)
        assert ring.sq_pending() == 0
        # CPU time accrued through the scheduler, like any guest task
        assert poller.proc.se.cpu_time_ns > 0
        kern.call(proc, "close", fd)

    def test_need_wakeup_and_kick_cycle(self, kern, proc):
        fd, ring = self._setup(kern, proc, idle_ms=1.0)
        # with a 1 ms idle window the poller parks almost immediately
        # and publishes IORING_SQ_NEED_WAKEUP
        deadline = time.monotonic() + 5
        while not ring.sq_need_wakeup and time.monotonic() < deadline:
            time.sleep(0.002)
        assert ring.sq_need_wakeup
        ring.sq_queue.append(SQE(IORING_OP_NOP, user_data=77))
        # one crossing revives the parked poller
        _enter(kern, proc, fd, flags=IORING_ENTER_SQ_WAKEUP)
        got = []
        deadline = time.monotonic() + 10
        while not got and time.monotonic() < deadline:
            got.extend(ring.reap(4))
            time.sleep(0.002)
        assert got[0].user_data == 77
        kern.call(proc, "close", fd)

    def test_close_stops_the_poller(self, kern, proc):
        fd, ring = self._setup(kern, proc)
        poller = ring.sqpoll
        kern.call(proc, "close", fd)
        deadline = time.monotonic() + 5
        while poller.alive and time.monotonic() < deadline:
            time.sleep(0.01)
        assert not poller.alive
        assert ring.closed  # fd drop closed the ring, ring stopped the task


class TestEnterValidation:
    def test_min_complete_beyond_cq_ring_is_einval(self, kern, proc):
        """Regression: a wait for more CQEs than the ring can ever hold
        used to hang forever; Linux rejects it up front."""
        fd = kern.call(proc, "io_uring_setup", 8)  # cq 16
        with pytest.raises(KernelError) as exc:
            _enter(kern, proc, fd, (), 17, 1_000_000_000)
        assert exc.value.errno == EINVAL


class TestTimeoutDeterminism:
    def test_timeout_completion_posts_on_the_syscall_thread(self, kern,
                                                            proc):
        """Regression: TIMEOUT used to complete on the wall-clock timer
        thread, racing _advance.  The timer now only marks the chain;
        the -ETIME CQE and the link cancellation are posted during the
        blocked enter — one deterministic ordering."""
        fd = kern.call(proc, "io_uring_setup", 8)
        _s, cqes = _enter(kern, proc, fd, [
            SQE(IORING_OP_TIMEOUT, off=10_000_000, flags=IOSQE_IO_LINK,
                user_data=1),
            SQE(IORING_OP_NOP, user_data=2),
        ], 2, 5_000_000_000)
        assert [(c.user_data, c.res) for c in cqes] == \
            [(1, -ETIME), (2, -ECANCELED)]
        ring = proc.fdtable.get(fd).obj
        # nothing left armed: every chain retired, no wall-clock timer
        assert all(c.done and c.timer is None for c in ring._chains)


class TestUringRaceRegression:
    """Regression for the off-thread waker race: _Parked wakeups and
    timer fires used to mutate ring._ready / chain.queued without
    ring._lock, so concurrent writers racing the reaping thread could
    lose or double-queue a chain.  Byte-exact accounting across many
    connections hammered from parallel writer threads catches both."""

    def test_threaded_waker_stress(self):
        import threading

        k = Kernel()
        p = k.create_process(["stress-server"])
        rfd = k.call(p, "io_uring_setup", 64)
        lfd = k.call(p, "socket", AF_INET, SOCK_STREAM)
        k.call(p, "bind", lfd, ("127.0.0.1", 9777))
        k.call(p, "listen", lfd, 64)

        nwriters, per_writer, nmsgs, msg = 4, 4, 25, b"01234567"
        nconns = nwriters * per_writer
        writers = [k.create_process([f"stress-w{i}"])
                   for i in range(nwriters)]
        wfds, afds = [], []
        for w in writers:
            fds = []
            for _ in range(per_writer):
                c = k.call(w, "socket", AF_INET, SOCK_STREAM)
                k.call(w, "connect", c, ("127.0.0.1", 9777))
                fds.append(c)
                afds.append(k.call(p, "accept", lfd))
            wfds.append(fds)
        for i, a in enumerate(afds):
            _enter(k, p, rfd, [SQE(IORING_OP_RECV, fd=a, length=4096,
                                   user_data=i)])

        def run_writer(w, fds):
            for _ in range(nmsgs):
                for c in fds:
                    k.call(w, "sendto", c, msg)

        threads = [threading.Thread(target=run_writer, args=pair,
                                    daemon=True)
                   for pair in zip(writers, wfds)]
        for t in threads:
            t.start()

        want = nmsgs * len(msg)
        got = [0] * nconns
        deadline = time.monotonic() + 30
        while any(g < want for g in got):
            assert time.monotonic() < deadline, got
            _s, cqes = _enter(k, p, rfd, (), 1, 2_000_000_000)
            rearm = []
            for c in cqes:
                assert c.res > 0, (c.user_data, c.res)
                got[c.user_data] += c.res
                if got[c.user_data] < want:
                    rearm.append(SQE(IORING_OP_RECV, fd=afds[c.user_data],
                                     length=4096, user_data=c.user_data))
            if rearm:
                _enter(k, p, rfd, rearm)
        for t in threads:
            t.join(10)
        # exact byte totals: no lost wakeups, no duplicated completions
        assert got == [want] * nconns
