"""io_uring subsystem tests: ring lifecycle, batched submission, deferred
completion on waitqueues, SQ-full and CQ-overflow semantics, link chains
with failure short-circuiting, ET-style single completion per arrival,
POLL_ADD/TIMEOUT ops, and the WALI guest-facing ring (shared ring memory,
one crossing per batch)."""

import time

import pytest

from repro.kernel import (
    AF_INET, EPOLL_CTL_ADD, EPOLLHUP, EPOLLIN, EPOLLOUT,
    IORING_OP_ACCEPT, IORING_OP_NOP, IORING_OP_POLL_ADD, IORING_OP_READ,
    IORING_OP_RECV, IORING_OP_SEND, IORING_OP_TIMEOUT, IORING_OP_WRITE,
    IOSQE_CQE_SKIP_SUCCESS, IOSQE_IO_LINK, Kernel, KernelError, SOCK_STREAM,
    SQE,
)
from repro.kernel.errno import (
    EBADF, ECANCELED, EINVAL, EPIPE, ETIME,
)

POLLIN = 1


# every ring-serving test runs twice: on an idle kernel, and preempted
# every 50 us by two CPU-bound spinner guests on a 2-slot scheduler —
# deferred completions and readiness parking must survive arbitrary
# preemption between submit, wakeup, and reap
@pytest.fixture(params=[
    pytest.param(False, id="idle"),
    pytest.param(True, id="contended"),
])
def kern(request):
    if not request.param:
        return Kernel()
    from repro.kernel import BackgroundSpinners

    k = Kernel(sched="cpus=2,slice_us=50")
    spinners = BackgroundSpinners(k, n=2).start()
    request.addfinalizer(spinners.stop)
    return k


@pytest.fixture
def proc(kern):
    return kern.create_process(["uring"])


def _pair(kern, proc):
    return kern.call(proc, "socketpair", AF_INET, SOCK_STREAM)


def _enter(kern, proc, fd, sqes=(), min_complete=0, timeout_ns=None,
           max_cqes=None):
    return kern.call(proc, "io_uring_enter", fd, sqes, min_complete,
                     timeout_ns, max_cqes)


class TestRingBasics:
    def test_setup_rounds_to_power_of_two(self, kern, proc):
        fd = kern.call(proc, "io_uring_setup", 5)
        ring = proc.fdtable.get(fd).obj
        assert ring.sq_entries == 8
        assert ring.cq_entries == 16

    def test_setup_rejects_bad_entries(self, kern, proc):
        for bad in (0, -1, 1 << 20):
            with pytest.raises(KernelError) as exc:
                kern.call(proc, "io_uring_setup", bad)
            assert exc.value.errno == EINVAL

    def test_enter_on_non_ring_fd_is_einval(self, kern, proc):
        a, _b = _pair(kern, proc)
        with pytest.raises(KernelError) as exc:
            _enter(kern, proc, a, [SQE(IORING_OP_NOP)])
        assert exc.value.errno == EINVAL

    def test_nop_batch_one_cqe_per_sqe(self, kern, proc):
        fd = kern.call(proc, "io_uring_setup", 8)
        sub, cqes = _enter(kern, proc, fd,
                           [SQE(IORING_OP_NOP, user_data=i)
                            for i in range(5)], 5)
        assert sub == 5
        assert [(c.user_data, c.res) for c in cqes] == \
            [(i, 0) for i in range(5)]

    def test_unknown_opcode_completes_with_einval(self, kern, proc):
        fd = kern.call(proc, "io_uring_setup", 8)
        _sub, cqes = _enter(kern, proc, fd, [SQE(99, user_data=1)], 1)
        assert cqes[0].res == -EINVAL

    def test_bad_fd_completes_with_ebadf(self, kern, proc):
        fd = kern.call(proc, "io_uring_setup", 8)
        _sub, cqes = _enter(kern, proc, fd,
                            [SQE(IORING_OP_READ, fd=999, length=4,
                                 user_data=1)], 1)
        assert cqes[0].res == -EBADF

    def test_register_ring_region_and_unknown_opcode(self, kern, proc):
        from repro.kernel import IORING_REGISTER_RING

        fd = kern.call(proc, "io_uring_setup", 8)
        kern.call(proc, "io_uring_register", fd, IORING_REGISTER_RING,
                  0xABC)
        assert proc.fdtable.get(fd).obj.registrations[
            IORING_REGISTER_RING] == 0xABC
        # unsupported registrations fail loudly (guests must fall back)
        with pytest.raises(KernelError) as exc:
            kern.call(proc, "io_uring_register", fd, 7, 0xABC)
        assert exc.value.errno == EINVAL


class TestRingIO:
    def test_inline_recv_send(self, kern, proc):
        fd = kern.call(proc, "io_uring_setup", 8)
        a, b = _pair(kern, proc)
        kern.call(proc, "sendto", b, b"already here")
        _sub, cqes = _enter(kern, proc, fd,
                            [SQE(IORING_OP_RECV, fd=a, length=64,
                                 user_data=1)], 1)
        assert cqes[0].res == 12 and cqes[0].data == b"already here"

    def test_deferred_recv_completes_on_readiness(self, kern, proc):
        """An op that would block parks on the waitqueue and completes
        when the data arrives — the deferred-completion core."""
        fd = kern.call(proc, "io_uring_setup", 8)
        a, b = _pair(kern, proc)
        sub, cqes = _enter(kern, proc, fd,
                           [SQE(IORING_OP_RECV, fd=a, length=64,
                                user_data=7)])
        assert sub == 1 and cqes == []  # parked, nothing to reap
        kern.call(proc, "sendto", b, b"later")
        _sub, cqes = _enter(kern, proc, fd, [], 1,
                            timeout_ns=2_000_000_000)
        assert [(c.user_data, c.res, c.data) for c in cqes] == \
            [(7, 5, b"later")]

    def test_et_style_single_completion_per_arrival(self, kern, proc):
        """One data arrival produces exactly one CQE, however many
        enters happen afterwards (no level-triggered duplicates)."""
        fd = kern.call(proc, "io_uring_setup", 8)
        a, b = _pair(kern, proc)
        _enter(kern, proc, fd, [SQE(IORING_OP_RECV, fd=a, length=4,
                                    user_data=1)])
        kern.call(proc, "sendto", b, b"xxxxyyyy")  # more than one read's worth
        _sub, cqes = _enter(kern, proc, fd, [], 1, 2_000_000_000)
        assert len(cqes) == 1 and cqes[0].res == 4
        # buffered bytes remain, but no RECV is armed: no spurious CQE
        for _ in range(3):
            _sub, cqes = _enter(kern, proc, fd, [], 0)
            assert cqes == []

    def test_accept_installs_fd_and_parks_until_connect(self, kern, proc):
        fd = kern.call(proc, "io_uring_setup", 8)
        lfd = kern.call(proc, "socket", AF_INET, SOCK_STREAM)
        kern.call(proc, "bind", lfd, ("127.0.0.1", 9301))
        kern.call(proc, "listen", lfd, 8)
        _enter(kern, proc, fd, [SQE(IORING_OP_ACCEPT, fd=lfd,
                                    user_data=5)])
        cfd = kern.call(proc, "socket", AF_INET, SOCK_STREAM)
        kern.call(proc, "connect", cfd, ("127.0.0.1", 9301))
        _sub, cqes = _enter(kern, proc, fd, [], 1, 2_000_000_000)
        assert cqes[0].user_data == 5 and cqes[0].res > 0
        sfd = cqes[0].res
        kern.call(proc, "sendto", cfd, b"through accepted fd")
        data, _ = kern.call(proc, "recvfrom", sfd, 64)
        assert data == b"through accepted fd"

    def test_write_epipe_has_no_sigpipe(self, kern, proc):
        """Ring sends fail with -EPIPE but never raise SIGPIPE (the
        MSG_NOSIGNAL-style discipline io_uring uses)."""
        fd = kern.call(proc, "io_uring_setup", 8)
        a, b = _pair(kern, proc)
        kern.call(proc, "shutdown", a, 1)  # SHUT_WR
        _sub, cqes = _enter(kern, proc, fd,
                            [SQE(IORING_OP_SEND, fd=a, data=b"nope",
                                 user_data=1)], 1)
        assert cqes[0].res == -EPIPE
        assert not proc.pending.bits  # no pending SIGPIPE

    def test_pinned_file_survives_fd_close(self, kern, proc):
        """A parked op holds the open-file description: closing the fd
        completes the op with EOF semantics instead of redirecting it
        to whatever reuses the number."""
        fd = kern.call(proc, "io_uring_setup", 8)
        a, b = _pair(kern, proc)
        _enter(kern, proc, fd, [SQE(IORING_OP_RECV, fd=a, length=16,
                                    user_data=3)])
        kern.call(proc, "close", b)  # peer gone -> EOF on a
        _sub, cqes = _enter(kern, proc, fd, [], 1, 2_000_000_000)
        assert [(c.user_data, c.res) for c in cqes] == [(3, 0)]

    def test_skip_success_suppresses_only_successes(self, kern, proc):
        fd = kern.call(proc, "io_uring_setup", 8)
        a, b = _pair(kern, proc)
        _sub, cqes = _enter(kern, proc, fd,
                            [SQE(IORING_OP_SEND, fd=a, data=b"ok",
                                 user_data=1,
                                 flags=IOSQE_CQE_SKIP_SUCCESS)], 0)
        assert cqes == []  # success: no CQE
        kern.call(proc, "shutdown", a, 1)
        _sub, cqes = _enter(kern, proc, fd,
                            [SQE(IORING_OP_SEND, fd=a, data=b"no",
                                 user_data=2,
                                 flags=IOSQE_CQE_SKIP_SUCCESS)], 1)
        assert [(c.user_data, c.res) for c in cqes] == [(2, -EPIPE)]


class TestRingLimits:
    def test_sq_full_rejects_oversized_batch(self, kern, proc):
        fd = kern.call(proc, "io_uring_setup", 4)  # SQ holds 4
        with pytest.raises(KernelError) as exc:
            _enter(kern, proc, fd,
                   [SQE(IORING_OP_NOP, user_data=i) for i in range(5)])
        assert exc.value.errno == EINVAL
        # a ring-sized batch is fine
        sub, _ = _enter(kern, proc, fd,
                        [SQE(IORING_OP_NOP, user_data=i) for i in range(4)])
        assert sub == 4

    def test_cq_overflow_backlogs_without_loss(self, kern, proc):
        fd = kern.call(proc, "io_uring_setup", 4)  # CQ holds 8
        ring = proc.fdtable.get(fd).obj
        for batch in range(3):  # 12 completions into an 8-slot CQ
            _enter(kern, proc, fd,
                   [SQE(IORING_OP_NOP, user_data=batch * 4 + i)
                    for i in range(4)], 0, None, 0)  # reap nothing
        assert ring.overflow == 4
        assert ring.overflow_pending
        # nothing is dropped: a ring-sized reap takes the oldest eight
        # and flushes the backlog into the freed slots...
        _sub, cqes = _enter(kern, proc, fd, [], 0, None, 8)
        assert [c.user_data for c in cqes] == list(range(8))
        assert not ring.overflow_pending  # backlog flushed into the ring
        # ...and the next reap hands over the rest, still in order
        _sub, cqes = _enter(kern, proc, fd, [], 0, None, 8)
        assert [c.user_data for c in cqes] == [8, 9, 10, 11]
        assert ring.overflow == 4  # the counter keeps the history

    def test_enter_timeout_returns_partial(self, kern, proc):
        fd = kern.call(proc, "io_uring_setup", 8)
        a, _b = _pair(kern, proc)
        t0 = time.monotonic()
        _sub, cqes = _enter(kern, proc, fd,
                            [SQE(IORING_OP_RECV, fd=a, length=4,
                                 user_data=1)], 1,
                            timeout_ns=30_000_000)
        assert cqes == []  # nothing arrived inside the timeout
        assert 0.02 < time.monotonic() - t0 < 1.0


class TestRingLinks:
    def test_linked_ops_run_in_order(self, kern, proc):
        fd = kern.call(proc, "io_uring_setup", 8)
        a, b = _pair(kern, proc)
        sqes = [SQE(IORING_OP_SEND, fd=a, data=b"pong", user_data=1,
                    flags=IOSQE_IO_LINK),
                SQE(IORING_OP_RECV, fd=b, length=16, user_data=2)]
        _sub, cqes = _enter(kern, proc, fd, sqes, 2, 2_000_000_000)
        assert [(c.user_data, c.res) for c in cqes] == [(1, 4), (2, 4)]
        assert cqes[1].data == b"pong"

    def test_failed_link_cancels_the_rest(self, kern, proc):
        """A failing op short-circuits its chain: followers complete
        with -ECANCELED and never run."""
        fd = kern.call(proc, "io_uring_setup", 8)
        a, b = _pair(kern, proc)
        sqes = [SQE(IORING_OP_READ, fd=999, length=4, user_data=1,
                    flags=IOSQE_IO_LINK),
                SQE(IORING_OP_SEND, fd=a, data=b"never", user_data=2,
                    flags=IOSQE_IO_LINK),
                SQE(IORING_OP_SEND, fd=a, data=b"ever", user_data=3)]
        _sub, cqes = _enter(kern, proc, fd, sqes, 3)
        assert [(c.user_data, c.res) for c in cqes] == \
            [(1, -EBADF), (2, -ECANCELED), (3, -ECANCELED)]
        # the cancelled sends really were skipped: peer got nothing
        with pytest.raises(KernelError):
            kern.call(proc, "fcntl", b, 4, 0o4000)  # F_SETFL O_NONBLOCK
            kern.call(proc, "recvfrom", b, 16)

    def test_failure_only_breaks_its_own_chain(self, kern, proc):
        fd = kern.call(proc, "io_uring_setup", 8)
        sqes = [SQE(IORING_OP_READ, fd=999, length=4, user_data=1,
                    flags=IOSQE_IO_LINK),
                SQE(IORING_OP_NOP, user_data=2),
                SQE(IORING_OP_NOP, user_data=3)]  # separate chain
        _sub, cqes = _enter(kern, proc, fd, sqes, 3)
        results = {c.user_data: c.res for c in cqes}
        assert results == {1: -EBADF, 2: -ECANCELED, 3: 0}

    def test_deferred_link_continues_after_park(self, kern, proc):
        """A chain whose head parks resumes where it left off: the
        linked follower runs only after the head completes."""
        fd = kern.call(proc, "io_uring_setup", 8)
        a, b = _pair(kern, proc)
        sqes = [SQE(IORING_OP_RECV, fd=a, length=16, user_data=1,
                    flags=IOSQE_IO_LINK),
                SQE(IORING_OP_SEND, fd=a, data=b"reply", user_data=2)]
        _sub, cqes = _enter(kern, proc, fd, sqes)
        assert cqes == []  # head parked; follower must not have run
        kern.call(proc, "sendto", b, b"request")
        _sub, cqes = _enter(kern, proc, fd, [], 2, 2_000_000_000)
        assert [(c.user_data, c.res) for c in cqes] == [(1, 7), (2, 5)]
        data, _ = kern.call(proc, "recvfrom", b, 16)
        assert data == b"reply"


class TestRingPollTimeout:
    def test_poll_add_single_shot(self, kern, proc):
        fd = kern.call(proc, "io_uring_setup", 8)
        a, b = _pair(kern, proc)
        _enter(kern, proc, fd, [SQE(IORING_OP_POLL_ADD, fd=a,
                                    off=EPOLLIN, user_data=1)])
        kern.call(proc, "sendto", b, b"ready")
        _sub, cqes = _enter(kern, proc, fd, [], 1, 2_000_000_000)
        assert cqes[0].user_data == 1 and cqes[0].res & EPOLLIN
        # single shot: readiness persists but no second CQE appears
        _sub, cqes = _enter(kern, proc, fd, [], 0)
        assert cqes == []

    def test_timeout_op_fires_with_etime(self, kern, proc):
        fd = kern.call(proc, "io_uring_setup", 8)
        t0 = time.monotonic()
        _sub, cqes = _enter(kern, proc, fd,
                            [SQE(IORING_OP_TIMEOUT, off=30_000_000,
                                 user_data=9)], 1, 2_000_000_000)
        assert [(c.user_data, c.res) for c in cqes] == [(9, -ETIME)]
        assert time.monotonic() - t0 >= 0.025

    def test_ring_fd_is_epollable(self, kern, proc):
        """A ring fd publishes EPOLLIN when CQEs are waiting, so it can
        nest inside an epoll set like any readiness source."""
        fd = kern.call(proc, "io_uring_setup", 8)
        a, b = _pair(kern, proc)
        ep = kern.call(proc, "epoll_create1", 0)
        kern.call(proc, "epoll_ctl", ep, EPOLL_CTL_ADD, fd, EPOLLIN)
        kern.call(proc, "epoll_pwait", ep, 8, timeout_ns=0)  # level drain
        _enter(kern, proc, fd, [SQE(IORING_OP_RECV, fd=a, length=8,
                                    user_data=1)])
        kern.call(proc, "sendto", b, b"wake")
        ready = kern.call(proc, "epoll_pwait", ep, 8,
                          timeout_ns=2_000_000_000)
        assert ready and ready[0][0] == fd and ready[0][1] & EPOLLIN
        _sub, cqes = _enter(kern, proc, fd, [], 1)
        assert cqes[0].res == 4

    def test_close_cancels_parked_ops(self, kern, proc):
        fd = kern.call(proc, "io_uring_setup", 8)
        a, b = _pair(kern, proc)
        sock_wq = proc.fdtable.get(a).sock.wq
        before = len(sock_wq)
        _enter(kern, proc, fd, [SQE(IORING_OP_RECV, fd=a, length=8,
                                    user_data=1)])
        assert len(sock_wq) == before + 1  # parked subscriber
        kern.call(proc, "close", fd)
        assert len(sock_wq) == before  # unsubscribed on ring close


class TestRingThroughWali:
    """The ring end-to-end through the guest: WALI imports, shared ring
    memory in the guest address space, one enter crossing per batch."""

    def _echo(self, net, nclients=20, rounds=5):
        from repro.apps import build
        from repro.wali import WaliRuntime

        rt = WaliRuntime(kernel=Kernel(net_backend=net))
        wp = rt.load(build("event_echo"),
                     argv=["event_echo", str(nclients), str(rounds), "-u"])
        assert wp.run() == 0
        want = f"echoes={nclients * rounds}".encode()
        assert want in rt.kernel.console_output(), \
            rt.kernel.console_output()
        return wp

    def test_event_echo_ring_mode_loopback(self):
        wp = self._echo("loopback")
        counts = wp.host.call_counts
        assert counts["io_uring_setup"] == 1
        assert counts["io_uring_enter"] >= 1
        # the point of the ring: no per-op read/write/accept crossings
        # (the few writes left are the final console prints)
        assert counts.get("read", 0) == 0
        assert counts.get("accept4", 0) == 0
        assert counts.get("epoll_pwait", 0) == 0
        assert counts.get("write", 0) <= 3

    def test_event_echo_ring_mode_wan(self):
        """Identical guest binary over an impaired link: parked ops
        complete on delayed readiness, the echo count is unchanged."""
        self._echo("wan:latency_ms=1,jitter_ms=0.3,seed=13",
                   nclients=8, rounds=3)

    def test_event_echo_ring_batches_crossings(self):
        """The crossing economics at 100 connections: the ring serves
        each echo in far fewer guest<->host crossings than the epoll
        mode spends on epoll_pwait + read + write alone."""
        from repro.apps import build
        from repro.wali import WaliRuntime

        totals = {}
        for label, argv in (
                ("epoll", ["event_echo", "100", "3"]),
                ("ring", ["event_echo", "100", "3", "-u"])):
            rt = WaliRuntime()
            wp = rt.load(build("event_echo"), argv=argv)
            assert wp.run() == 0
            assert b"echoes=300" in rt.kernel.console_output()
            totals[label] = sum(wp.host.call_counts.values())
        assert totals["ring"] * 3 <= totals["epoll"], totals

    def test_memcached_ring_serving_mode(self):
        """mini-memcached -u serves concurrent clients through the ring
        with zero clones and coalesced replies."""
        import time as _t

        from repro.apps import build
        from repro.wali import WaliRuntime

        rt = WaliRuntime()
        server = rt.load(build("mini_memcached"),
                         argv=["memcached", "11213", "-u"])
        server.start_in_thread()
        for _ in range(500):
            if b"ready" in rt.kernel.console_output():
                break
            _t.sleep(0.01)
        else:
            pytest.fail("server did not come up")

        k = rt.kernel
        cp = k.create_process(["pyclient"])
        fds = []
        for i in range(30):
            fd = k.call(cp, "socket", AF_INET, SOCK_STREAM)
            k.call(cp, "connect", fd, ("127.0.0.1", 11213))
            fds.append(fd)

        def recvline(fd):
            out = b""
            while not out.endswith(b"\n"):
                data, _ = k.call(cp, "recvfrom", fd, 256)
                if not data:
                    break
                out += data
            return out.decode().strip()

        # all requests outstanding before any reply is read
        for i, fd in enumerate(fds):
            k.call(cp, "sendto", fd, f"set k{i} v{i}\n".encode())
        for fd in fds:
            assert recvline(fd) == "STORED"
        for i, fd in enumerate(fds):
            k.call(cp, "sendto", fd, f"get k{i}\n".encode())
        for i, fd in enumerate(fds):
            assert recvline(fd) == f"VALUE v{i}"
        # single-threaded ring dispatch: no worker LWPs, no epoll
        assert k.syscall_counts.get("clone", 0) == 0
        assert k.syscall_counts.get("epoll_pwait", 0) == 0
        assert k.syscall_counts.get("io_uring_enter", 0) >= 1
        k.call(cp, "sendto", fds[0], b"shutdown\n")
        assert recvline(fds[0]) == "BYE"
        server.join(5)

    def test_memcached_ring_reply_overflow_keeps_wire_order(self):
        """A pipelined burst whose replies overflow the per-connection
        coalescing slot must still arrive in protocol order (buffered
        fragments flush before any direct-write fallback)."""
        import time as _t

        from repro.apps import build
        from repro.wali import WaliRuntime

        rt = WaliRuntime()
        server = rt.load(build("mini_memcached"),
                         argv=["memcached", "11214", "-u"])
        server.start_in_thread()
        for _ in range(500):
            if b"ready" in rt.kernel.console_output():
                break
            _t.sleep(0.01)
        k = rt.kernel
        cp = k.create_process(["pyclient"])
        fd = k.call(cp, "socket", AF_INET, SOCK_STREAM)
        k.call(cp, "connect", fd, ("127.0.0.1", 11214))
        k.call(cp, "sendto", fd, b"set big 0123456789012345678901234\n")
        out = b""
        while not out.endswith(b"STORED\n"):
            data, _ = k.call(cp, "recvfrom", fd, 256)
            out += data
        # 12 pipelined gets -> ~12 x 32B of replies > the 256B slot
        k.call(cp, "sendto", fd, b"get big\n" * 12)
        want = b"VALUE 0123456789012345678901234\n" * 12
        out = b""
        while len(out) < len(want):
            data, _ = k.call(cp, "recvfrom", fd, 1024)
            if not data:
                break
            out += data
        assert out == want
        k.call(cp, "sendto", fd, b"shutdown\n")
        server.join(5)

    def test_guest_sq_cq_counters_visible_in_ring_memory(self):
        """The guest reads its own progress from the shared ring header
        (sq/cq heads and tails) without extra crossings."""
        from repro.apps import with_libc
        from repro.cc import compile_source
        from repro.wali import WaliRuntime

        src = r"""
export func _start() {
    if (uring_init(4) < 0) { exit(1); }
    if (uring_sq_pending() != 0) { exit(2); }
    uring_sqe(IORING_OP_NOP, -1, 0, 0, 11, 0);
    uring_sqe(IORING_OP_NOP, -1, 0, 0, 12, 0);
    if (uring_sq_pending() != 2) { exit(3); }
    if (uring_reap_batch(2, 1000) != 2) { exit(4); }
    if (uring_sq_pending() != 0) { exit(5); }
    if (uring_cqe_data(0) != 11) { exit(6); }
    if (uring_cqe_data(1) != 12) { exit(7); }
    uring_cq_advance(2);
    if (uring_cq_ready() != 0) { exit(8); }
    // SQ-full is visible guest-side without a crossing
    uring_sqe(IORING_OP_NOP, -1, 0, 0, 1, 0);
    uring_sqe(IORING_OP_NOP, -1, 0, 0, 2, 0);
    uring_sqe(IORING_OP_NOP, -1, 0, 0, 3, 0);
    uring_sqe(IORING_OP_NOP, -1, 0, 0, 4, 0);
    if (uring_sqe(IORING_OP_NOP, -1, 0, 0, 5, 0) != -1) { exit(9); }
    exit(0);
}
"""
        rt = WaliRuntime()
        wp = rt.load(compile_source(with_libc(src), name="ringmem"),
                     argv=["ringmem"])
        assert wp.run() == 0
