"""SMP scheduler + PI futex tests: affinity-honored placement, work
stealing, migration normalization, futex wake count/ordering, priority
inheritance across lock handoff, and the starvation regression.

The scheduler tests drive the state machine with a fake clock (no
threads, fully deterministic — these run in the CI determinism job);
the futex tests go through ``Kernel.call`` with real waiter threads.
"""

import threading
import time

import pytest

from repro.kernel import (
    FUTEX_LOCK_PI, FUTEX_UNLOCK_PI, FUTEX_WAIT, FUTEX_WAKE, Kernel,
    KernelError, Process, Scheduler, TRACEPOINTS, nice_to_weight,
)
from repro.kernel.errno import (
    EDEADLK, EINVAL, EPERM, ETIMEDOUT,
)
from repro.kernel.sched import SCHED_RUNNABLE, SCHED_RUNNING

SLICE_US = 100


class FakeClock:
    def __init__(self):
        self.ns = 0

    def __call__(self):
        return self.ns

    def advance_us(self, us):
        self.ns += int(us * 1000)


def make_sched(ncpus, slice_us=SLICE_US):
    clock = FakeClock()
    return Scheduler(ncpus=ncpus, slice_us=slice_us, clock=clock), clock


def make_tasks(n):
    return [Process(i + 1, 0) for i in range(n)]


def spin_until(pred, timeout_s=5.0):
    deadline = time.monotonic() + timeout_s
    while not pred():
        if time.monotonic() > deadline:
            raise AssertionError("condition not reached in time")
        time.sleep(0.002)


# --------------------------------------------------------------------------
# placement honors affinity
# --------------------------------------------------------------------------

class TestAffinityPlacement:
    def test_pinned_task_lands_on_its_cpu(self):
        sched, _ = make_sched(ncpus=4)
        (t1,) = make_tasks(1)
        t1.se.affinity = 0b0100  # cpu 2 only
        sched.task_attach(t1)
        assert t1.se.state == SCHED_RUNNING
        assert t1.se.cpu == 2
        snap = sched.cpu_snapshot()
        assert snap[2]["current"] == t1.pid
        assert all(s["current"] is None for s in snap if s["cpu"] != 2)

    def test_unpinned_tasks_spread_one_per_cpu(self):
        sched, _ = make_sched(ncpus=4)
        tasks = make_tasks(4)
        for t in tasks:
            sched.task_attach(t)
        assert sorted(t.se.cpu for t in tasks) == [0, 1, 2, 3]
        assert all(t.se.state == SCHED_RUNNING for t in tasks)

    def test_least_loaded_eligible_cpu_wins(self):
        sched, _ = make_sched(ncpus=4)
        tasks = make_tasks(6)
        for t in tasks[:4]:
            sched.task_attach(t)     # one per CPU
        # extra unpinned task queues on cpu 0 (all tied, lowest index)
        sched.task_attach(tasks[4])
        assert tasks[4].se.cpu == 0
        # a task allowed only {2, 3} must go there even though cpu 1
        # has the same load — and not to cpu 0, which is now busier
        tasks[5].se.affinity = 0b1100
        sched.task_attach(tasks[5])
        assert tasks[5].se.cpu in (2, 3)

    def test_queued_task_waits_for_its_cpu_even_if_others_idle(self):
        sched, _ = make_sched(ncpus=2)
        t1, t2 = make_tasks(2)
        sched.task_attach(t1)        # cpu 0
        t2.se.affinity = 0b01        # pinned to the busy cpu 0
        sched.task_attach(t2)
        assert t2.se.state == SCHED_RUNNABLE
        assert t2.se.cpu == 0
        assert sched.cpu_snapshot()[1]["current"] is None  # stays idle

    def test_setaffinity_migrates_queued_task(self):
        sched, _ = make_sched(ncpus=2)
        t1, t2, t3 = make_tasks(3)
        sched.task_attach(t1)        # cpu 0
        sched.task_attach(t2)        # cpu 1
        sched.task_attach(t3)        # queued on cpu 0
        assert (t3.se.state, t3.se.cpu) == (SCHED_RUNNABLE, 0)
        sched.set_affinity(t3, 0b10)
        assert t3.se.cpu == 1
        assert t3.pid in sched.cpu_snapshot()[1]["queued"]
        assert t3.se.migrations == 1

    def test_setaffinity_moves_running_user_task(self):
        sched, _ = make_sched(ncpus=2)
        t1, t2 = make_tasks(2)
        sched.task_attach(t1)        # cpu 0, depth 0 (user mode)
        sched.task_attach(t2)        # cpu 1
        sched.set_affinity(t1, 0b10)
        # evicted from cpu 0 in absentia, queued on cpu 1 behind t2
        assert t1.se.state == SCHED_RUNNABLE
        assert t1.se.cpu == 1


# --------------------------------------------------------------------------
# work stealing
# --------------------------------------------------------------------------

class TestWorkStealing:
    def test_idle_cpu_steals_from_busiest_queue(self):
        sched, _ = make_sched(ncpus=2)
        t1, t2, t3 = make_tasks(3)
        sched.task_attach(t1)        # cpu 0
        sched.task_attach(t2)        # cpu 1
        sched.task_attach(t3)        # queued on cpu 0
        sched.task_block(t2)         # cpu 1 idles, its queue empty
        assert t3.se.state == SCHED_RUNNING
        assert t3.se.cpu == 1        # stolen across
        assert sched.nr_steals == 1
        assert t3.se.migrations == 1

    def test_steal_respects_affinity(self):
        sched, _ = make_sched(ncpus=4)
        tasks = make_tasks(5)
        for t in tasks[:4]:
            sched.task_attach(t)     # fill all four CPUs
        pinned = tasks[4]
        pinned.se.affinity = 0b0001  # cpu 0 only
        sched.task_attach(pinned)    # queues on cpu 0
        sched.task_block(tasks[3])   # cpu 3 goes idle
        # cpu 3 may not steal the pinned task: it stays queued on cpu 0
        assert pinned.se.state == SCHED_RUNNABLE
        assert pinned.se.cpu == 0
        assert sched.nr_steals == 0
        assert sched.cpu_snapshot()[3]["current"] is None

    def test_steal_takes_lowest_vruntime_eligible(self):
        sched, clock = make_sched(ncpus=2)
        t1, t2, a, b = make_tasks(4)
        sched.task_attach(t1)        # cpu 0
        sched.task_attach(t2)        # cpu 1
        sched.task_attach(a)         # queued cpu 0
        sched.task_attach(b)         # queued cpu 1 (load tie resolved 0,1)
        assert {a.se.cpu, b.se.cpu} == {0, 1}
        # give the queued tasks distinct vruntimes, then open one slot
        a.se.vruntime_ns = 500
        b.se.vruntime_ns = 200
        sched.task_block(t1)         # cpu 0 frees; picks locally first
        assert a.se.state == SCHED_RUNNING  # its own queue wins

    def test_migration_renormalizes_vruntime(self):
        sched, clock = make_sched(ncpus=2)
        t1, t2, t3 = make_tasks(3)
        sched.task_attach(t1)        # cpu 0
        sched.task_attach(t2)        # cpu 1
        clock.advance_us(1000)
        sched.check_preempt(t1)      # charge: cpu 0 min_vruntime -> 1ms
        sched.check_preempt(t2)
        sched.task_attach(t3)        # queued (both cpus busy)
        vrt0 = t3.se.vruntime_ns
        victim = t1 if t3.se.cpu == 0 else t2
        other = t2 if victim is t1 else t1
        sched.task_block(other)      # other cpu idles -> steals t3
        assert t3.se.state == SCHED_RUNNING
        assert t3.se.cpu == other.se.cpu
        # lag against the source queue carried over, never negative
        assert t3.se.vruntime_ns >= 0
        shift = abs(t3.se.vruntime_ns - vrt0)
        assert shift <= max(sched._rqs[0].min_vruntime,
                            sched._rqs[1].min_vruntime)

    def test_steal_emits_counter_and_tracepoint(self):
        assert "sched_migrate" in TRACEPOINTS
        assert "sched_steal" in TRACEPOINTS
        k = Kernel(trace="on")
        clock = FakeClock()
        sched = Scheduler(ncpus=2, slice_us=SLICE_US, kernel=k,
                          clock=clock)
        t1, t2, t3 = make_tasks(3)
        for t in (t1, t2, t3):
            sched.task_attach(t)
        base = k.trace.counters.get("sched.steal")
        sched.task_block(t2)
        assert k.trace.counters.get("sched.steal") == base + 1
        steal_id = TRACEPOINTS.index("sched_steal")
        assert any(ev.id == steal_id for ev in k.trace.buffer._q)
        k.trace.close()


# --------------------------------------------------------------------------
# affinity syscalls (kernel level)
# --------------------------------------------------------------------------

class TestAffinitySyscalls:
    def test_empty_effective_mask_rejected(self):
        k = Kernel(ncpus=1)
        p = k.create_process(["t"], stdio=False)
        with pytest.raises(KernelError) as ei:
            k.call(p, "sched_setaffinity", 0, 1 << 8)
        assert ei.value.errno == EINVAL

    def test_mask_validated_against_sched_cpus(self):
        # the scheduler is the authority when constrained, not the
        # machine description
        k = Kernel(ncpus=4, sched="cpus=1,slice_us=100")
        p = k.create_process(["t"], stdio=False)
        with pytest.raises(KernelError):
            k.call(p, "sched_setaffinity", 0, 0b10)  # only cpu 1: invalid
        assert k.call(p, "sched_setaffinity", 0, 0b11) == 0
        assert k.call(p, "sched_getaffinity", 0) == 0b01  # truncated

    def test_set_get_roundtrip_and_placement(self):
        k = Kernel(ncpus=4)
        p = k.create_process(["t"], stdio=False)
        assert k.call(p, "sched_getaffinity", 0) == 0b1111
        k.call(p, "sched_setaffinity", 0, 0b0100)
        assert k.call(p, "sched_getaffinity", 0) == 0b0100
        # the calling task itself re-places at the next schedule point
        k.call(p, "getpid")
        assert p.se.cpu == 2


# --------------------------------------------------------------------------
# futex wake count and ordering
# --------------------------------------------------------------------------

UADDR = 0x2000


class TestFutexWake:
    @pytest.fixture
    def k(self):
        return Kernel()

    def _start_waiter(self, k, proc, out, uaddr=UADDR):
        def run():
            k.call(proc, "futex", uaddr, FUTEX_WAIT, 1, 1,
                   timeout_ns=10_000_000_000)
            out.append(proc.pid)
        th = threading.Thread(target=run, daemon=True)
        th.start()
        key = (proc.tgid, uaddr)
        spin_until(lambda: any(e[1] is proc
                               for e in k.futex_waiters.get(key, [])))
        return th

    def test_wake_n_of_m_wakes_exactly_n(self, k):
        procs = [k.create_process([f"w{i}"], stdio=False)
                 for i in range(3)]
        for p in procs[1:]:
            p.tgid = procs[0].tgid  # share the futex key
        woken = []
        threads = [self._start_waiter(k, p, woken) for p in procs]
        waker = k.create_process(["waker"], stdio=False)
        waker.tgid = procs[0].tgid
        assert k.call(waker, "futex", UADDR, FUTEX_WAKE, 2, 0) == 2
        spin_until(lambda: len(woken) == 2)
        time.sleep(0.05)
        assert len(woken) == 2  # the third waiter stays parked
        assert k.call(waker, "futex", UADDR, FUTEX_WAKE, 10, 0) == 1
        for th in threads:
            th.join(timeout=10)
        assert sorted(woken) == sorted(p.pid for p in procs)

    def test_wake_order_priority_then_fifo(self, k):
        lo1 = k.create_process(["lo1"], stdio=False)
        hi = k.create_process(["hi"], stdio=False)
        lo2 = k.create_process(["lo2"], stdio=False)
        for p in (hi, lo2):
            p.tgid = lo1.tgid
        k.sched.set_nice(hi, -10)
        woken = []
        threads = [self._start_waiter(k, p, woken)
                   for p in (lo1, hi, lo2)]  # arrival: lo1, hi, lo2
        waker = k.create_process(["waker"], stdio=False)
        waker.tgid = lo1.tgid
        # highest weight first
        assert k.call(waker, "futex", UADDR, FUTEX_WAKE, 1, 0) == 1
        spin_until(lambda: len(woken) == 1)
        assert woken == [hi.pid]
        # FIFO among the equal-weight rest
        assert k.call(waker, "futex", UADDR, FUTEX_WAKE, 1, 0) == 1
        spin_until(lambda: len(woken) == 2)
        assert woken[1] == lo1.pid
        k.call(waker, "futex", UADDR, FUTEX_WAKE, 1, 0)
        for th in threads:
            th.join(timeout=10)

    def test_wait_timeout_is_named_etimedout(self, k):
        p = k.create_process(["t"], stdio=False)
        with pytest.raises(KernelError) as ei:
            k.call(p, "futex", UADDR, FUTEX_WAIT, 1, 1,
                   timeout_ns=1_000_000)
        assert ei.value.errno == ETIMEDOUT

    def test_negative_wake_count_rejected(self, k):
        p = k.create_process(["t"], stdio=False)
        with pytest.raises(KernelError) as ei:
            k.call(p, "futex", UADDR, FUTEX_WAKE, -1, 0)
        assert ei.value.errno == EINVAL


# --------------------------------------------------------------------------
# PI futexes: boost, handoff, robust release
# --------------------------------------------------------------------------

class TestFutexPI:
    @pytest.fixture
    def k(self):
        return Kernel()

    def test_uncontended_lock_unlock(self, k):
        p = k.create_process(["t"], stdio=False)
        assert k.call(p, "futex", UADDR, FUTEX_LOCK_PI, 0, 0) == 0
        assert k.call(p, "futex", UADDR, FUTEX_UNLOCK_PI, 0, 0) == 0

    def test_relock_deadlock_and_foreign_unlock(self, k):
        p = k.create_process(["t"], stdio=False)
        q = k.create_process(["u"], stdio=False)
        q.tgid = p.tgid
        k.call(p, "futex", UADDR, FUTEX_LOCK_PI, 0, 0)
        with pytest.raises(KernelError) as ei:
            k.call(p, "futex", UADDR, FUTEX_LOCK_PI, 0, 0)
        assert ei.value.errno == EDEADLK
        with pytest.raises(KernelError) as ei:
            k.call(q, "futex", UADDR, FUTEX_UNLOCK_PI, 0, 0)
        assert ei.value.errno == EPERM
        k.call(p, "futex", UADDR, FUTEX_UNLOCK_PI, 0, 0)

    def test_boost_and_restore_across_handoff(self, k):
        holder = k.create_process(["holder"], stdio=False)
        waiter = k.create_process(["waiter"], stdio=False)
        waiter.tgid = holder.tgid
        k.sched.set_nice(holder, 19)
        k.sched.set_nice(waiter, -20)
        k.call(holder, "futex", UADDR, FUTEX_LOCK_PI, 0, 0)
        got = []

        def contend():
            got.append(k.call(waiter, "futex", UADDR, FUTEX_LOCK_PI,
                              0, 0, timeout_ns=10_000_000_000))
        th = threading.Thread(target=contend, daemon=True)
        th.start()
        # contention boosts the holder to the waiter's weight
        spin_until(lambda: holder.se.weight == nice_to_weight(-20))
        assert holder.se.pi_weight == nice_to_weight(-20)
        assert holder.se.nice == 19  # nice itself is untouched
        k.call(holder, "futex", UADDR, FUTEX_UNLOCK_PI, 0, 0)
        th.join(timeout=10)
        assert got == [0]            # handoff: the waiter now owns it
        # boost dropped with the lock; the waiter runs on its own weight
        assert holder.se.weight == nice_to_weight(19)
        assert holder.se.pi_weight == 0
        assert waiter.se.pi_weight == 0
        k.call(waiter, "futex", UADDR, FUTEX_UNLOCK_PI, 0, 0)

    def test_exit_releases_owned_pi_futex(self, k):
        holder = k.create_process(["holder"], stdio=False)
        waiter = k.create_process(["waiter"], stdio=False)
        waiter.tgid = holder.tgid
        k.call(holder, "futex", UADDR, FUTEX_LOCK_PI, 0, 0)
        got = []

        def contend():
            got.append(k.call(waiter, "futex", UADDR, FUTEX_LOCK_PI,
                              0, 0, timeout_ns=10_000_000_000))
        th = threading.Thread(target=contend, daemon=True)
        th.start()
        key = (holder.tgid, UADDR)
        spin_until(lambda: waiter in k.futex_pi[key]["waiters"])
        k.call(holder, "exit", 0)    # robust release: hands off the lock
        th.join(timeout=10)
        assert got == [0]
        assert k.futex_pi[key]["owner"] is waiter
        assert holder.se.pi_weight == 0


# --------------------------------------------------------------------------
# the starvation regression (the bug PI exists to fix)
# --------------------------------------------------------------------------

class TestStarvationRegression:
    def _progress_share(self, boost_weight):
        """Deterministic inversion scenario on one CPU: a nice+19
        holder shares the CPU with a nice-0 hog; returns the holder's
        CPU share over a bounded number of ticks, with the given PI
        boost applied (0 = no PI)."""
        sched, clock = make_sched(ncpus=1, slice_us=SLICE_US)
        holder, hog = make_tasks(2)
        holder.se.set_nice(19)
        sched.task_attach(holder)
        sched.task_attach(hog)
        if boost_weight:
            sched.set_boost(holder, boost_weight)
        for _ in range(200):         # 200 ticks x 100 us = 20 ms logical
            clock.advance_us(SLICE_US)
            sched.tick()
        for t in (holder, hog):
            sched.check_preempt(t)   # settle the final slice
        total = holder.se.cpu_time_ns + hog.se.cpu_time_ns
        return holder.se.cpu_time_ns / total

    def test_boosted_holder_progresses_within_bounded_ticks(self):
        # without PI the +19 holder gets its weight share, ~1.4% — the
        # high-priority waiter would wait ~70 slices for each slice of
        # lock-holder progress (the inversion)
        assert self._progress_share(0) < 0.10
        # boosted to the nice-20 waiter's weight it dominates: the
        # holder reaches the release point within a bounded tick budget
        share = self._progress_share(nice_to_weight(-20))
        assert share > 0.60

    def test_end_to_end_inversion_bounded(self):
        """Integration: nice-20 waiter acquires a PI lock from a nice+19
        holder while a nice-0 hog spins, within a wall-clock bound that
        the unboosted weight share (~1.4% of one CPU) could not meet."""
        k = Kernel(sched="cpus=1,slice_us=200")
        holder = k.create_process(["holder"], stdio=False)
        waiter = k.create_process(["waiter"], stdio=False)
        hog = k.create_process(["hog"], stdio=False)
        waiter.tgid = holder.tgid
        k.sched.set_nice(holder, 19)
        k.sched.set_nice(waiter, -20)
        k.call(holder, "futex", UADDR, FUTEX_LOCK_PI, 0, 0)
        stop = threading.Event()

        def spin():
            while not stop.is_set():
                k.call(hog, "getpid")

        def hold_then_release():
            for _ in range(50):      # bounded critical section
                k.call(holder, "getpid")
            k.call(holder, "futex", UADDR, FUTEX_UNLOCK_PI, 0, 0)

        got = []

        def contend():
            got.append(k.call(waiter, "futex", UADDR, FUTEX_LOCK_PI,
                              0, 0, timeout_ns=30_000_000_000))

        threads = [threading.Thread(target=f, daemon=True)
                   for f in (spin, contend, hold_then_release)]
        try:
            threads[0].start()
            threads[1].start()
            spin_until(lambda: holder.se.pi_weight > 0, timeout_s=10)
            threads[2].start()
            threads[1].join(timeout=30)
            assert not threads[1].is_alive(), "waiter starved"
            assert got == [0]
        finally:
            stop.set()
            for th in threads:
                th.join(timeout=10)
        k.call(waiter, "futex", UADDR, FUTEX_UNLOCK_PI, 0, 0)


# --------------------------------------------------------------------------
# /proc/sched_debug per-CPU sections
# --------------------------------------------------------------------------

class TestSchedDebugSMP:
    def test_per_cpu_sections_and_counters(self):
        k = Kernel(sched="cpus=2,slice_us=100")
        p = k.create_process(["t"], stdio=False)
        fd = k.call(p, "open", "/proc/sched_debug", 0)
        text = k.call(p, "read", fd, 8192).decode()
        assert text.startswith("sched:cpus=2")
        assert "cpu#0:" in text and "cpu#1:" in text
        assert "migrations:" in text and "steals:" in text
        assert "aff" in text
