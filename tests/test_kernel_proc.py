"""Kernel tests: processes, clone flags, wait4, signals, futex, mm, sockets."""

import threading

import pytest

from repro.kernel import (
    AF_INET, AT_FDCWD, CLONE_FILES, CLONE_SIGHAND, CLONE_THREAD, CLONE_VM,
    Kernel, KernelError, MAP_ANONYMOUS, MAP_FIXED, MAP_PRIVATE, MAP_SHARED,
    O_CREAT, O_RDWR, PROT_READ, PROT_WRITE, SIG_BLOCK, SIG_SETMASK,
    SIG_UNBLOCK, SIGCHLD, SIGINT, SIGKILL, SIGTERM, SIGUSR1, SOCK_STREAM,
    SigAction, WNOHANG, sig_bit,
)
from repro.kernel.errno import (
    EADDRINUSE, ECHILD, ECONNREFUSED, EINTR, EINVAL, ENOMEM, EPERM, ESRCH,
)
from repro.kernel.mm import AddressSpace, MREMAP_MAYMOVE
from repro.kernel.process import RLIMIT_NOFILE


@pytest.fixture
def k():
    return Kernel()


@pytest.fixture
def proc(k):
    return k.create_process(["test"], {})


class TestCloneSpectrum:
    """Fig. 4: what is shared depends on clone flags."""

    def test_fork_copies_fdtable(self, k, proc):
        fd = k.call(proc, "openat", AT_FDCWD, "/tmp/x", O_CREAT | O_RDWR, 0o644)
        child = k.call(proc, "fork")
        k.call(child, "close", fd)
        k.call(proc, "fstat", fd)  # parent's copy still open

    def test_clone_files_shares_fdtable(self, k, proc):
        child = k.call(proc, "clone", CLONE_FILES)
        fd = k.call(child, "openat", AT_FDCWD, "/tmp/y", O_CREAT, 0o644)
        k.call(proc, "fstat", fd)  # visible in parent

    def test_clone_thread_same_tgid(self, k, proc):
        t = k.call(proc, "clone",
                   CLONE_VM | CLONE_FILES | CLONE_SIGHAND | CLONE_THREAD)
        assert t.tgid == proc.tgid
        assert t.pid != proc.pid
        assert k.call(t, "getpid") == proc.tgid
        assert k.call(t, "gettid") == t.pid

    def test_clone_without_thread_new_tgid(self, k, proc):
        child = k.call(proc, "fork")
        assert child.tgid == child.pid != proc.tgid

    def test_clone_sighand_shares_dispositions(self, k, proc):
        t = k.call(proc, "clone", CLONE_SIGHAND)
        k.call(proc, "rt_sigaction", SIGUSR1, SigAction(handler=42))
        assert k.call(t, "rt_sigaction", SIGUSR1, None).handler == 42

    def test_fork_copies_dispositions(self, k, proc):
        k.call(proc, "rt_sigaction", SIGUSR1, SigAction(handler=42))
        child = k.call(proc, "fork")
        k.call(child, "rt_sigaction", SIGUSR1, SigAction(handler=7))
        assert k.call(proc, "rt_sigaction", SIGUSR1, None).handler == 42

    def test_signal_mask_inherited(self, k, proc):
        k.call(proc, "rt_sigprocmask", SIG_BLOCK, sig_bit(SIGUSR1))
        child = k.call(proc, "fork")
        assert child.blocked_mask & sig_bit(SIGUSR1)


class TestWait:
    def test_wait_reaps_zombie(self, k, proc):
        child = k.call(proc, "fork")
        k.call(child, "exit_group", 3)
        pid, status, _ = k.call(proc, "wait4", -1, 0)
        assert pid == child.pid
        assert status >> 8 == 3
        assert child.pid not in k.processes

    def test_wait_specific_pid(self, k, proc):
        c1 = k.call(proc, "fork")
        c2 = k.call(proc, "fork")
        k.call(proc, "kill", c2.pid, SIGKILL)  # pending, but not dead yet
        k.call(c1, "exit_group", 1)
        pid, status, _ = k.call(proc, "wait4", c1.pid, 0)
        assert pid == c1.pid

    def test_wait_nohang_returns_zero(self, k, proc):
        k.call(proc, "fork")
        pid, _, _ = k.call(proc, "wait4", -1, WNOHANG)
        assert pid == 0

    def test_wait_no_children_echild(self, k, proc):
        with pytest.raises(KernelError) as ei:
            k.call(proc, "wait4", -1, 0)
        assert ei.value.errno == ECHILD

    def test_sigchld_generated_on_exit_when_handled(self, k, proc):
        k.call(proc, "rt_sigaction", SIGCHLD, SigAction(handler=5))
        child = k.call(proc, "fork")
        k.call(child, "exit_group", 0)
        assert proc.pending.bits & sig_bit(SIGCHLD)

    def test_default_sigchld_discarded_at_generation(self, k, proc):
        # Linux semantics: ignored-by-default signals never become pending,
        # so a child's exit cannot EINTR the parent's blocking wait4.
        child = k.call(proc, "fork")
        k.call(child, "exit_group", 0)
        assert not proc.pending.bits & sig_bit(SIGCHLD)
        assert not proc.has_deliverable_signal()

    def test_orphans_reparented_to_init(self, k, proc):
        child = k.call(proc, "fork")
        grandchild = k.call(child, "fork")
        k.call(child, "exit_group", 0)
        assert grandchild.ppid == 1

    def test_wait_blocks_until_exit(self, k, proc):
        child = k.call(proc, "fork")
        done = []

        def waiter():
            done.append(k.call(proc, "wait4", -1, 0))

        t = threading.Thread(target=waiter)
        t.start()
        k.call(child, "exit_group", 9)
        t.join(timeout=5)
        assert done and done[0][0] == child.pid


class TestSignals:
    def test_kill_esrch(self, k, proc):
        with pytest.raises(KernelError) as ei:
            k.call(proc, "kill", 9999, SIGTERM)
        assert ei.value.errno == ESRCH

    def test_kill_sets_pending(self, k, proc):
        other = k.create_process(["o"], {})
        k.call(proc, "kill", other.pid, SIGINT)
        assert other.pending.bits & sig_bit(SIGINT)

    def test_kill_zero_probes(self, k, proc):
        other = k.create_process(["o"], {})
        assert k.call(proc, "kill", other.pid, 0) == 0

    def test_kill_process_group(self, k, proc):
        a = k.call(proc, "fork")
        b = k.call(proc, "fork")
        k.call(proc, "setpgid", a.pid, proc.pgid)
        k.call(proc, "setpgid", b.pid, proc.pgid)
        k.call(proc, "kill", 0, SIGTERM)  # own process group
        assert a.pending.bits & sig_bit(SIGTERM)
        assert b.pending.bits & sig_bit(SIGTERM)

    def test_sigprocmask_algebra(self, k, proc):
        old = k.call(proc, "rt_sigprocmask", SIG_BLOCK,
                     sig_bit(SIGINT) | sig_bit(SIGTERM))
        assert old == 0
        old = k.call(proc, "rt_sigprocmask", SIG_UNBLOCK, sig_bit(SIGINT))
        assert old == sig_bit(SIGINT) | sig_bit(SIGTERM)
        assert proc.blocked_mask == sig_bit(SIGTERM)
        k.call(proc, "rt_sigprocmask", SIG_SETMASK, 0)
        assert proc.blocked_mask == 0

    def test_sigkill_not_blockable(self, k, proc):
        k.call(proc, "rt_sigprocmask", SIG_BLOCK, sig_bit(SIGKILL))
        assert not proc.blocked_mask & sig_bit(SIGKILL)

    def test_sigaction_on_kill_einval(self, k, proc):
        with pytest.raises(KernelError) as ei:
            k.call(proc, "rt_sigaction", SIGKILL, SigAction(handler=5))
        assert ei.value.errno == EINVAL

    def test_blocked_signal_not_deliverable(self, k, proc):
        k.call(proc, "rt_sigprocmask", SIG_BLOCK, sig_bit(SIGUSR1))
        proc.generate_signal(SIGUSR1)
        assert not proc.has_deliverable_signal()
        k.call(proc, "rt_sigprocmask", SIG_SETMASK, 0)
        assert proc.has_deliverable_signal()

    def test_signal_interrupts_blocking_read_eintr(self, k, proc):
        r, w = k.call(proc, "pipe2", 0)
        result = []

        def reader():
            try:
                k.call(proc, "read", r, 1)
            except KernelError as exc:
                result.append(exc.errno)

        t = threading.Thread(target=reader)
        t.start()
        import time
        time.sleep(0.02)
        proc.generate_signal(SIGINT)
        t.join(timeout=5)
        assert result == [EINTR]

    def test_sigreturn_denied(self, k, proc):
        with pytest.raises(KernelError) as ei:
            k.call(proc, "rt_sigreturn")
        assert ei.value.errno == EPERM

    def test_pending_signal_take_order(self, k, proc):
        proc.generate_signal(SIGTERM)
        proc.generate_signal(SIGINT)
        assert proc.pending.take(0) == SIGTERM
        assert proc.pending.take(0) == SIGINT
        assert proc.pending.take(0) is None

    def test_take_skips_blocked(self, k, proc):
        proc.generate_signal(SIGTERM)
        proc.generate_signal(SIGINT)
        assert proc.pending.take(sig_bit(SIGTERM)) == SIGINT


class TestIdentityAndLimits:
    def test_ids(self, k, proc):
        assert k.call(proc, "getuid") == 1000
        assert k.call(proc, "getpid") == proc.pid
        assert k.call(proc, "getppid") == 1

    def test_setsid(self, k, proc):
        sid = k.call(proc, "setsid")
        assert sid == proc.pid == proc.pgid

    def test_prlimit_get_set(self, k, proc):
        cur, maxv = k.call(proc, "prlimit64", 0, RLIMIT_NOFILE, None)
        assert cur == 1024
        k.call(proc, "prlimit64", 0, RLIMIT_NOFILE, (256, 4096))
        assert k.call(proc, "getrlimit", RLIMIT_NOFILE) == (256, 4096)

    def test_prlimit_cur_above_max_einval(self, k, proc):
        with pytest.raises(KernelError) as ei:
            k.call(proc, "prlimit64", 0, RLIMIT_NOFILE, (9999, 10))
        assert ei.value.errno == EINVAL

    def test_uname(self, k, proc):
        uts = k.call(proc, "uname")
        assert uts.sysname == "Linux"

    def test_getrandom_deterministic_per_seed(self):
        k1, k2 = Kernel(rng_seed=1), Kernel(rng_seed=1)
        p1, p2 = k1.create_process(), k2.create_process()
        assert k1.call(p1, "getrandom", 16) == k2.call(p2, "getrandom", 16)


class TestFutex:
    def test_wait_value_mismatch_eagain(self, k, proc):
        with pytest.raises(KernelError) as ei:
            k.call(proc, "futex", 0x1000, 0, 5, 6)  # expected 5, saw 6
        assert ei.value.errno == 11

    def test_wake_without_waiters(self, k, proc):
        assert k.call(proc, "futex", 0x1000, 1, 10, 0) == 0

    def test_wait_then_wake(self, k, proc):
        proc.mm = AddressSpace(0, 1 << 20)
        t2 = k.call(proc, "clone",
                    CLONE_VM | CLONE_FILES | CLONE_SIGHAND | CLONE_THREAD)
        woken = []

        def waiter():
            woken.append(k.call(proc, "futex", 0x2000, 0, 1, 1))

        th = threading.Thread(target=waiter)
        th.start()
        import time
        time.sleep(0.02)
        assert k.call(t2, "futex", 0x2000, 1, 1, 0) == 1
        th.join(timeout=5)
        assert woken == [0]


class TestAddressSpace:
    def _mm(self):
        return AddressSpace(0x10000, 0x100000)

    def test_anon_mmap_allocates(self):
        mm = self._mm()
        res = mm.mmap(0, 8192, PROT_READ | PROT_WRITE,
                      MAP_PRIVATE | MAP_ANONYMOUS)
        assert res.addr == 0x10000
        assert res.populate is None

    def test_fixed_mmap_replaces(self):
        mm = self._mm()
        mm.mmap(0x20000, 4096, PROT_READ,
                MAP_PRIVATE | MAP_ANONYMOUS | MAP_FIXED)
        mm.mmap(0x20000, 4096, PROT_WRITE,
                MAP_PRIVATE | MAP_ANONYMOUS | MAP_FIXED)
        assert mm.find(0x20000).prot == PROT_WRITE
        assert len(mm.vmas) == 1

    def test_hint_without_fixed_is_ignored(self):
        mm = self._mm()
        res = mm.mmap(0x20000, 4096, PROT_READ, MAP_PRIVATE | MAP_ANONYMOUS)
        assert res.addr == mm.base  # first-fit from the arena base

    def test_munmap_splits(self):
        mm = self._mm()
        mm.mmap(0x20000, 3 * 4096, PROT_READ,
                MAP_PRIVATE | MAP_ANONYMOUS | MAP_FIXED, None, 0)
        mm.munmap(0x21000, 4096)
        assert mm.find(0x20000) is not None
        assert mm.find(0x21000) is None
        assert mm.find(0x22000) is not None

    def test_exhaustion_enomem(self):
        mm = AddressSpace(0, 0x4000)
        mm.mmap(0, 0x4000, PROT_READ, MAP_PRIVATE | MAP_ANONYMOUS)
        with pytest.raises(KernelError) as ei:
            mm.mmap(0, 4096, PROT_READ, MAP_PRIVATE | MAP_ANONYMOUS)
        assert ei.value.errno == ENOMEM

    def test_mremap_grow_in_place(self):
        mm = self._mm()
        r = mm.mmap(0, 4096, PROT_READ, MAP_PRIVATE | MAP_ANONYMOUS)
        addr, moved = mm.mremap(r.addr, 4096, 8192, MREMAP_MAYMOVE)
        assert addr == r.addr and not moved

    def test_mremap_moves_on_conflict(self):
        mm = self._mm()
        a = mm.mmap(0, 4096, PROT_READ, MAP_PRIVATE | MAP_ANONYMOUS)
        mm.mmap(a.addr + 4096, 4096, PROT_READ,
                MAP_PRIVATE | MAP_ANONYMOUS | MAP_FIXED)
        addr, moved = mm.mremap(a.addr, 4096, 8192, MREMAP_MAYMOVE)
        assert moved and addr != a.addr

    def test_mremap_shrink(self):
        mm = self._mm()
        r = mm.mmap(0, 8192, PROT_READ, MAP_PRIVATE | MAP_ANONYMOUS)
        addr, moved = mm.mremap(r.addr, 8192, 4096, 0)
        assert addr == r.addr and not moved
        assert mm.find(r.addr + 4096) is None

    def test_mprotect_splits_vma(self):
        mm = self._mm()
        r = mm.mmap(0, 3 * 4096, PROT_READ | PROT_WRITE,
                    MAP_PRIVATE | MAP_ANONYMOUS)
        mm.mprotect(r.addr + 4096, 4096, PROT_READ)
        assert mm.find(r.addr).prot == PROT_READ | PROT_WRITE
        assert mm.find(r.addr + 4096).prot == PROT_READ
        assert len(mm.vmas) == 3

    def test_mprotect_hole_enomem(self):
        mm = self._mm()
        mm.mmap(0x20000, 4096, PROT_READ, MAP_PRIVATE | MAP_ANONYMOUS)
        with pytest.raises(KernelError) as ei:
            mm.mprotect(0x20000, 3 * 4096, PROT_READ)
        assert ei.value.errno == ENOMEM

    def test_file_mapping_populates(self, k, proc):
        proc.mm = self._mm()
        k.vfs.write_file("/tmp/m", b"filedata" + b"\x00" * 100)
        fd = k.call(proc, "openat", AT_FDCWD, "/tmp/m", O_RDWR, 0)
        res = k.call(proc, "mmap", 0, 4096, PROT_READ, MAP_PRIVATE, fd, 0)
        assert res.populate.startswith(b"filedata")
        assert len(res.populate) == 4096

    def test_shared_writeback_on_munmap(self, k, proc):
        proc.mm = self._mm()
        k.vfs.write_file("/tmp/wb", b"original")
        fd = k.call(proc, "openat", AT_FDCWD, "/tmp/wb", O_RDWR, 0)
        res = k.call(proc, "mmap", 0, 4096, PROT_READ | PROT_WRITE,
                     MAP_SHARED, fd, 0)
        k.call(proc, "munmap", res.addr, 4096,
               mem_reader=lambda a, n: b"modified" + b"\x00" * (n - 8))
        assert k.vfs.read_file("/tmp/wb") == b"modified"


class TestSockets:
    def test_stream_roundtrip(self, k, proc):
        srv = k.call(proc, "socket", AF_INET, SOCK_STREAM)
        k.call(proc, "bind", srv, ("127.0.0.1", 7000))
        k.call(proc, "listen", srv, 8)
        cli = k.call(proc, "socket", AF_INET, SOCK_STREAM)
        k.call(proc, "connect", cli, ("127.0.0.1", 7000))
        conn = k.call(proc, "accept", srv)
        k.call(proc, "sendto", cli, b"hello")
        data, _ = k.call(proc, "recvfrom", conn, 100)
        assert data == b"hello"
        k.call(proc, "sendto", conn, b"world")
        data, _ = k.call(proc, "recvfrom", cli, 100)
        assert data == b"world"

    def test_connect_refused(self, k, proc):
        cli = k.call(proc, "socket", AF_INET, SOCK_STREAM)
        with pytest.raises(KernelError) as ei:
            k.call(proc, "connect", cli, ("127.0.0.1", 9))
        assert ei.value.errno == ECONNREFUSED

    def test_addr_in_use(self, k, proc):
        a = k.call(proc, "socket", AF_INET, SOCK_STREAM)
        b = k.call(proc, "socket", AF_INET, SOCK_STREAM)
        k.call(proc, "bind", a, ("0.0.0.0", 80))
        with pytest.raises(KernelError) as ei:
            k.call(proc, "bind", b, ("0.0.0.0", 80))
        assert ei.value.errno == EADDRINUSE

    def test_reuseaddr(self, k, proc):
        a = k.call(proc, "socket", AF_INET, SOCK_STREAM)
        k.call(proc, "bind", a, ("0.0.0.0", 81))
        k.call(proc, "close", a)
        b = k.call(proc, "socket", AF_INET, SOCK_STREAM)
        k.call(proc, "setsockopt", b, 1, 2, 1)  # SOL_SOCKET, SO_REUSEADDR
        k.call(proc, "bind", b, ("0.0.0.0", 81))

    def test_socketpair(self, k, proc):
        a, b = k.call(proc, "socketpair", 1, SOCK_STREAM)
        k.call(proc, "write", a, b"x")
        assert k.call(proc, "read", b, 10) == b"x"

    def test_peer_close_eof(self, k, proc):
        a, b = k.call(proc, "socketpair", 1, SOCK_STREAM)
        k.call(proc, "close", a)
        assert k.call(proc, "read", b, 10) == b""

    def test_getsockname(self, k, proc):
        s = k.call(proc, "socket", AF_INET, SOCK_STREAM)
        k.call(proc, "bind", s, ("10.0.0.1", 1234))
        assert k.call(proc, "getsockname", s) == ("10.0.0.1", 1234)

    def test_dgram_sendto_recvfrom(self, k, proc):
        from repro.kernel import SOCK_DGRAM
        a = k.call(proc, "socket", AF_INET, SOCK_DGRAM)
        b = k.call(proc, "socket", AF_INET, SOCK_DGRAM)
        k.call(proc, "bind", a, ("0.0.0.0", 500))
        k.call(proc, "bind", b, ("0.0.0.0", 501))
        k.call(proc, "sendto", a, b"dgram", ("0.0.0.0", 501))
        data, src = k.call(proc, "recvfrom", b, 100)
        assert data == b"dgram"
        assert src == ("0.0.0.0", 500)


class TestExitGroup:
    def test_exit_group_kills_threads(self, k, proc):
        t = k.call(proc, "clone",
                   CLONE_VM | CLONE_FILES | CLONE_SIGHAND | CLONE_THREAD)
        k.call(proc, "exit_group", 0)
        assert t.pending.bits & sig_bit(SIGKILL)

    def test_thread_exit_autoreaped(self, k, proc):
        t = k.call(proc, "clone",
                   CLONE_VM | CLONE_FILES | CLONE_SIGHAND | CLONE_THREAD)
        k.call(t, "exit", 0)
        assert t.pid not in k.processes
