"""Block layer tests: the disk cost model charged through the scheduler,
the block-granular page cache, writeback (daemon + foreground), the real
sync family, O_DIRECT/O_SYNC semantics, /proc surfaces, uring FSYNC —
and crash consistency: a kill-at-every-write matrix over a scenario with
fsync'd, un-synced, and O_DIRECT data, plus a Hypothesis invariant that
the page cache always equals disk-after-recovery overlaid with the dirty
pages."""

import time

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.kernel import (
    AT_FDCWD, AddressSpace, BlockFS, Disk, IN_ALL_EVENTS, IN_CLOSE_WRITE,
    IN_NONBLOCK, IORING_OP_FSYNC, Kernel, KernelError, MAP_SHARED, O_CREAT,
    O_DIRECT, O_RDONLY, O_RDWR, O_SYNC, O_WRONLY, PROT_READ, PROT_WRITE,
    SQE, TRACEPOINTS, VFS, create_blockfs, decode_events,
)
from repro.kernel.calls.memsys import MS_SYNC
from repro.kernel.errno import EINVAL, ENOENT, ENOSPC

ZERO_COST = "seek_us=0,read_us=0,write_us=0"


def _fast_disk(nblocks=512):
    return Disk(nblocks=nblocks, seek_us=0.0, read_us_per_block=0.0,
                write_us_per_block=0.0)


def _boot(disk=None, **kw):
    fs = BlockFS(disk if disk is not None else _fast_disk(),
                 auto_daemon=False, **kw)
    return Kernel(block=fs), fs


def _remount(disk):
    return Kernel(block=BlockFS(disk, auto_daemon=False))


def _read_or_none(kern, path):
    try:
        return bytes(kern.vfs.read_file(path))
    except KernelError as exc:
        assert exc.errno == ENOENT
        return None


# ---------------------------------------------------------------------------
# crash matrix
# ---------------------------------------------------------------------------

CONTENT_A = bytes(range(256)) * 32          # 8 KiB, two blocks
CONTENT_A2 = b"#" * 4000 + CONTENT_A[4000:]  # after the second fsync
CONTENT_B = b"never-synced " * 100
CONTENT_C = b"direct-io " * 50


def _crash_scenario(fail_at=None):
    """Run the write/fsync scenario on a zero-cost disk, killing the
    device after ``fail_at`` post-mount writes (None = never).  Returns
    the crashed disk image plus the write-count marks of each commit
    point (meaningful on the baseline run, deterministic across runs)."""
    disk = _fast_disk()
    kern, fs = _boot(disk)
    base = disk.writes
    if fail_at is not None:
        disk.fail_after(fail_at)
    p = kern.create_process(["crash-scenario"])

    fd = kern.call(p, "openat", AT_FDCWD, "/data/a", O_CREAT | O_WRONLY,
                   0o644)
    kern.call(p, "write", fd, CONTENT_A)
    kern.call(p, "fsync", fd)
    a1 = disk.writes - base

    fdb = kern.call(p, "openat", AT_FDCWD, "/data/b", O_CREAT | O_WRONLY,
                    0o644)
    kern.call(p, "write", fdb, CONTENT_B)
    kern.call(p, "close", fdb)           # close-write, never synced

    fdc = kern.call(p, "openat", AT_FDCWD, "/data/c",
                    O_CREAT | O_WRONLY | O_DIRECT, 0o644)
    kern.call(p, "write", fdc, CONTENT_C)
    kern.call(p, "close", fdc)           # data on disk, metadata is not

    kern.call(p, "pwrite64", fd, b"#" * 4000, 0)
    kern.call(p, "fsync", fd)
    a2 = disk.writes - base
    kern.call(p, "close", fd)

    return fs.crash(), a1, a2


def test_crash_scenario_baseline_recovers_everything_committed():
    crashed, a1, a2 = _crash_scenario()
    assert 0 < a1 < a2
    kern = _remount(crashed)
    assert _read_or_none(kern, "/data/a") == CONTENT_A2
    # b's creation was committed by a's second fsync, but its data was
    # never flushed: it recovers as an empty file, never as torn bytes
    assert _read_or_none(kern, "/data/b") == b""
    # c's O_DIRECT write put the data on disk; the same later commit
    # made the metadata durable too
    assert _read_or_none(kern, "/data/c") == CONTENT_C


def test_crash_matrix_kill_at_every_write():
    _, a1, a2 = _crash_scenario()        # baseline marks (deterministic)
    for k in range(a2 + 2):
        crashed, _, _ = _crash_scenario(fail_at=k)
        kern = _remount(crashed)
        a = _read_or_none(kern, "/data/a")
        b = _read_or_none(kern, "/data/b")
        c = _read_or_none(kern, "/data/c")
        if k < a1:
            # crash before the first commit point: nothing exists; a
            # half-written commit must roll back to the empty fs
            assert a is None and b is None and c is None, k
        elif k < a2:
            # between the two commits: exactly the first fsync'd
            # version of a — never a torn mix of old and new bytes
            assert a == CONTENT_A, k
            assert b is None and c is None, k
        else:
            assert a == CONTENT_A2, k
            assert b == b"" and c == CONTENT_C, k


def test_unreadable_superblock_refomats_cleanly():
    # kill the disk before mkfs finishes: remount finds no valid
    # superblock and formats fresh instead of crashing
    disk = _fast_disk()
    disk.fail_after(0)
    kern, fs = _boot(disk)
    crashed = fs.crash()
    kern2 = _remount(crashed)
    assert _read_or_none(kern2, "/data/x") is None
    p = kern2.create_process(["post"])
    fd = kern2.call(p, "openat", AT_FDCWD, "/data/x", O_CREAT | O_WRONLY,
                    0o644)
    kern2.call(p, "write", fd, b"alive")
    kern2.call(p, "fsync", fd)


# ---------------------------------------------------------------------------
# Hypothesis: cache == disk-after-recovery overlaid with dirty pages
# ---------------------------------------------------------------------------

_FILES = ("f0", "f1")
_OP = st.one_of(
    st.tuples(st.just("write"), st.sampled_from(_FILES),
              st.integers(0, 12000), st.integers(1, 5000),
              st.integers(0, 255)),
    st.tuples(st.just("truncate"), st.sampled_from(_FILES),
              st.integers(0, 16000)),
    st.tuples(st.just("fsync"), st.sampled_from(_FILES)),
    st.tuples(st.just("writeback"), st.just("")),
)


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=st.lists(_OP, max_size=25))
def test_clean_cache_blocks_match_recovered_disk(ops):
    v = VFS()
    fs = BlockFS(_fast_disk(nblocks=256), auto_daemon=False)
    fs.mount(v)
    nodes = {name: v.write_file("/data/" + name, b"") for name in _FILES}
    for op in ops:
        try:
            if op[0] == "write":
                _, name, off, n, byte = op
                nodes[name].write_at(off, bytes([byte]) * n)
            elif op[0] == "truncate":
                nodes[op[1]].truncate(op[2])
            elif op[0] == "fsync":
                fs.fsync_inode(nodes[op[1]], charge=False)
            else:
                fs.writeback(charge=False)
        except KernelError as exc:
            assert exc.errno == ENOSPC

    # recover a snapshot of the device as it stands right now
    v2 = VFS()
    fs2 = BlockFS(fs.disk.clone(), auto_daemon=False)
    fs2.mount(v2)
    bs = fs.disk.block_size
    for name, node in nodes.items():
        try:
            rec = bytes(v2.read_file("/data/" + name))
        except KernelError:
            rec = b""
        m = node.mapping
        data = node.data
        for idx in range((len(data) + bs - 1) // bs):
            if idx in m.dirty or idx not in m.resident:
                continue  # dirty/absent pages may diverge from disk
            lo, hi = idx * bs, min(idx * bs + bs, len(data))
            assert bytes(data[lo:hi]) == rec[lo:hi], (name, idx)


def test_sync_all_makes_cache_and_disk_identical():
    v = VFS()
    fs = BlockFS(_fast_disk(nblocks=256), auto_daemon=False)
    fs.mount(v)
    na = v.write_file("/data/a", b"alpha" * 1000)
    nb = v.write_file("/data/b", b"beta" * 2000)
    nb.truncate(3000)
    fs.sync_all(charge=False)
    v2 = VFS()
    BlockFS(fs.disk.clone(), auto_daemon=False).mount(v2)
    assert bytes(v2.read_file("/data/a")) == bytes(na.data)
    assert bytes(v2.read_file("/data/b")) == bytes(nb.data)


# ---------------------------------------------------------------------------
# cost model: I/O time is charged through the scheduler
# ---------------------------------------------------------------------------

class TestCostModel:
    def test_io_cost_parks_the_caller(self):
        kern = Kernel(
            block="block:seek_us=2000,read_us=500,write_us=500,daemon=0",
            trace="on")
        p = kern.create_process(["io"])
        fd = kern.call(p, "openat", AT_FDCWD, "/data/f",
                       O_CREAT | O_WRONLY, 0o644)
        kern.call(p, "write", fd, b"x" * 8192)
        t0 = time.monotonic()
        kern.call(p, "fsync", fd)
        elapsed = time.monotonic() - t0
        # fsync flushes >= 2 data blocks + metadata + superblock at
        # 500us/block + 2ms/seek: well over half a millisecond of
        # simulated device time, served while parked on the I/O queue
        assert elapsed >= 0.0005
        assert kern.trace.counters["block.io_wait_ns"] > 0
        assert kern.trace.counters["block.fsync"] == 1

    def test_zero_cost_disk_does_not_park(self):
        kern, _fs = _boot()
        p = kern.create_process(["io"])
        fd = kern.call(p, "openat", AT_FDCWD, "/data/f",
                       O_CREAT | O_WRONLY, 0o644)
        t0 = time.monotonic()
        kern.call(p, "write", fd, b"x" * 4096)
        kern.call(p, "fsync", fd)
        assert time.monotonic() - t0 < 0.5

    def test_cache_hits_skip_the_device(self):
        kern = Kernel(block="block:" + ZERO_COST + ",daemon=0",
                      trace="on")
        fs = kern.blockdev
        p = kern.create_process(["io"])
        fd = kern.call(p, "openat", AT_FDCWD, "/data/f",
                       O_CREAT | O_RDWR, 0o644)
        kern.call(p, "write", fd, b"y" * 16384)
        kern.call(p, "fsync", fd)
        fs.drop_caches()
        reads_before = fs.disk.reads
        assert kern.call(p, "pread64", fd, 16384, 0) == b"y" * 16384
        misses = kern.trace.counters["block.cache_miss"]
        assert fs.disk.reads > reads_before and misses >= 4
        # second read: fully cached, the device is not touched
        reads_before = fs.disk.reads
        assert kern.call(p, "pread64", fd, 16384, 0) == b"y" * 16384
        assert fs.disk.reads == reads_before
        assert kern.trace.counters["block.cache_hit"] >= 4


# ---------------------------------------------------------------------------
# sync family and open-flag semantics
# ---------------------------------------------------------------------------

class TestDurabilitySemantics:
    def test_o_sync_writes_are_durable_without_fsync(self):
        kern, fs = _boot()
        p = kern.create_process(["osync"])
        fd = kern.call(p, "openat", AT_FDCWD, "/data/s",
                       O_CREAT | O_WRONLY | O_SYNC, 0o644)
        kern.call(p, "write", fd, b"synchronous" * 400)
        kern2 = _remount(fs.crash())
        assert _read_or_none(kern2, "/data/s") == b"synchronous" * 400

    def test_o_direct_alone_is_not_durable(self):
        kern, fs = _boot()
        p = kern.create_process(["direct"])
        fd = kern.call(p, "openat", AT_FDCWD, "/data/d",
                       O_CREAT | O_RDWR | O_DIRECT, 0o644)
        writes_before = fs.disk.writes
        kern.call(p, "write", fd, b"raw" * 2000)
        node = kern.vfs.lookup("/data/d")
        # the data went straight to the device and left the cache...
        assert fs.disk.writes > writes_before
        assert not node.mapping.resident
        # ...reads fault it back in (and O_DIRECT drops it again)
        assert kern.call(p, "pread64", fd, 6000, 0) == b"raw" * 2000
        assert not node.mapping.resident
        # but without a commit the file does not survive a crash
        kern2 = _remount(fs.crash())
        assert _read_or_none(kern2, "/data/d") is None

    def test_sync_file_range_flushes_data_without_commit(self):
        kern, fs = _boot()
        p = kern.create_process(["sfr"])
        fd = kern.call(p, "openat", AT_FDCWD, "/data/r",
                       O_CREAT | O_WRONLY, 0o644)
        kern.call(p, "write", fd, b"range" * 1000)
        seq, writes = fs._seq, fs.disk.writes
        kern.call(p, "sync_file_range", fd, 0, 0, 0)
        # the classic pitfall, modeled: data blocks hit the device but
        # no metadata commit happened, so a crash still loses the file
        assert fs.disk.writes > writes and fs._seq == seq
        kern2 = _remount(fs.crash())
        assert _read_or_none(kern2, "/data/r") is None

    def test_sync_and_syncfs_commit_everything(self):
        kern, fs = _boot()
        p = kern.create_process(["sync"])
        for name in ("x", "y"):
            fd = kern.call(p, "openat", AT_FDCWD, "/data/" + name,
                           O_CREAT | O_WRONLY, 0o644)
            kern.call(p, "write", fd, name.encode() * 5000)
            kern.call(p, "close", fd)
        kern.call(p, "sync")
        kern2 = _remount(fs.crash())
        assert _read_or_none(kern2, "/data/x") == b"x" * 5000
        assert _read_or_none(kern2, "/data/y") == b"y" * 5000

    def test_fdatasync_is_durable_too(self):
        kern, fs = _boot()
        p = kern.create_process(["fdsync"])
        fd = kern.call(p, "openat", AT_FDCWD, "/data/j",
                       O_CREAT | O_WRONLY, 0o644)
        kern.call(p, "write", fd, b"journal")
        kern.call(p, "fdatasync", fd)
        kern2 = _remount(fs.crash())
        assert _read_or_none(kern2, "/data/j") == b"journal"

    def test_close_write_event_does_not_imply_durability(self):
        # IN_CLOSE_WRITE fires at close(2); durability needs fsync.  An
        # editor watching for close-write and assuming the save is on
        # disk loses the file to a crash
        kern, fs = _boot()
        p = kern.create_process(["watcher"])
        ifd = kern.call(p, "inotify_init1", IN_NONBLOCK)
        kern.call(p, "inotify_add_watch", ifd, "/data", IN_ALL_EVENTS)
        fd = kern.call(p, "openat", AT_FDCWD, "/data/doc",
                       O_CREAT | O_WRONLY, 0o644)
        kern.call(p, "write", fd, b"draft")
        kern.call(p, "close", fd)
        evs = decode_events(kern.call(p, "read", ifd, 4096))
        assert (IN_CLOSE_WRITE, "doc") in [(m, n) for _, m, _, n in evs]
        kern2 = _remount(fs.crash())
        assert _read_or_none(kern2, "/data/doc") is None

    def test_rename_then_fsync_survives(self):
        kern, fs = _boot()
        p = kern.create_process(["mv"])
        fd = kern.call(p, "openat", AT_FDCWD, "/data/tmp",
                       O_CREAT | O_WRONLY, 0o644)
        kern.call(p, "write", fd, b"payload")
        kern.call(p, "fsync", fd)
        kern.call(p, "renameat", AT_FDCWD, "/data/tmp", AT_FDCWD,
                  "/data/final")
        kern.call(p, "fsync", fd)
        kern2 = _remount(fs.crash())
        assert _read_or_none(kern2, "/data/tmp") is None
        assert _read_or_none(kern2, "/data/final") == b"payload"

    def test_unlink_is_durable_at_the_next_commit(self):
        kern, fs = _boot()
        p = kern.create_process(["rm"])
        fd = kern.call(p, "openat", AT_FDCWD, "/data/victim",
                       O_CREAT | O_WRONLY, 0o644)
        kern.call(p, "write", fd, b"doomed" * 1000)
        kern.call(p, "fsync", fd)
        kern.call(p, "close", fd)
        kern.call(p, "unlinkat", AT_FDCWD, "/data/victim", 0)
        kern.call(p, "sync")   # commit: the deletion reaches the disk
        kern2 = _remount(fs.crash())
        assert _read_or_none(kern2, "/data/victim") is None
        # the freed blocks are reusable: fill a file of the same size
        p2 = kern2.create_process(["reuse"])
        fd = kern2.call(p2, "openat", AT_FDCWD, "/data/fresh",
                        O_CREAT | O_WRONLY, 0o644)
        kern2.call(p2, "write", fd, b"reborn" * 1000)
        kern2.call(p2, "fsync", fd)

    def test_enospc_when_data_blocks_run_out(self):
        kern, _fs = _boot(Disk(nblocks=16, seek_us=0.0,
                               read_us_per_block=0.0,
                               write_us_per_block=0.0))
        p = kern.create_process(["full"])
        fd = kern.call(p, "openat", AT_FDCWD, "/data/big",
                       O_CREAT | O_WRONLY, 0o644)
        # 16 dirty blocks on a 7-data-block device: the dirty-ratio
        # throttle forces foreground writeback mid-write, which runs
        # out of blocks — the write itself reports ENOSPC
        with pytest.raises(KernelError) as exc:
            kern.call(p, "write", fd, b"z" * 65536)
        assert exc.value.errno == ENOSPC


# ---------------------------------------------------------------------------
# writeback: daemon, dirty thresholds, msync
# ---------------------------------------------------------------------------

class TestWriteback:
    def test_daemon_flushes_aged_dirty_pages(self):
        kern = Kernel(block="block:" + ZERO_COST +
                      ",dirty_writeback_centisecs=2,dirty_expire_centisecs=0")
        fs = kern.blockdev
        try:
            p = kern.create_process(["bg"])
            fd = kern.call(p, "openat", AT_FDCWD, "/data/bg",
                           O_CREAT | O_WRONLY, 0o644)
            kern.call(p, "write", fd, b"w" * 8192)
            deadline = time.monotonic() + 5.0
            while fs._ndirty and time.monotonic() < deadline:
                time.sleep(0.01)
            assert fs._ndirty == 0
            kern2 = _remount(fs.crash())
            assert _read_or_none(kern2, "/data/bg") == b"w" * 8192
        finally:
            fs.stop_daemon()

    def test_foreground_writeback_when_dirty_ratio_exceeded(self):
        kern = Kernel(block="block:" + ZERO_COST +
                      ",daemon=0,dirty_ratio=2,dirty_background_ratio=1",
                      trace="on")
        fs = kern.blockdev
        limit = fs._dirty_limit(fs.dirty_ratio)
        p = kern.create_process(["hog"])
        fd = kern.call(p, "openat", AT_FDCWD, "/data/hog",
                       O_CREAT | O_WRONLY, 0o644)
        kern.call(p, "write", fd, b"h" * ((limit + 4) * 4096))
        # the write itself throttled into foreground writeback
        assert kern.trace.counters["block.foreground_writeback"] >= 1
        assert fs._ndirty <= limit

    def test_msync_ms_sync_is_durable(self):
        kern, fs = _boot()
        p = kern.create_process(["mm"])
        p.mm = AddressSpace(0x10000, 0x100000)
        fd = kern.call(p, "openat", AT_FDCWD, "/data/m",
                       O_CREAT | O_RDWR, 0o644)
        kern.call(p, "write", fd, b"a" * 8192)
        res = kern.call(p, "mmap", 0, 8192, PROT_READ | PROT_WRITE,
                        MAP_SHARED, fd, 0)
        kern.call(p, "msync", res.addr, 8192, MS_SYNC,
                  lambda addr, length: b"B" * length)
        kern2 = _remount(fs.crash())
        assert _read_or_none(kern2, "/data/m") == b"B" * 8192


# ---------------------------------------------------------------------------
# uring FSYNC
# ---------------------------------------------------------------------------

class TestUringFsync:
    def test_fsync_completes_async_and_is_durable(self):
        kern = Kernel(
            block="block:seek_us=100,read_us=50,write_us=50,daemon=0")
        fs = kern.blockdev
        p = kern.create_process(["ring"])
        fd = kern.call(p, "openat", AT_FDCWD, "/data/u",
                       O_CREAT | O_WRONLY, 0o644)
        kern.call(p, "write", fd, b"ring-durable" * 300)
        ring = kern.call(p, "io_uring_setup", 8)
        sub, cqes = kern.call(
            p, "io_uring_enter", ring,
            [SQE(IORING_OP_FSYNC, fd=fd, user_data=7)], 1, 2_000_000_000)
        assert sub == 1
        assert [(c.user_data, c.res) for c in cqes] == [(7, 0)]
        kern2 = _remount(fs.crash())
        assert _read_or_none(kern2, "/data/u") == b"ring-durable" * 300

    def test_fsync_on_non_regular_fd_is_einval(self):
        kern, _fs = _boot()
        p = kern.create_process(["ring"])
        efd = kern.call(p, "eventfd2", 0, 0)
        ring = kern.call(p, "io_uring_setup", 8)
        _sub, cqes = kern.call(
            p, "io_uring_enter", ring,
            [SQE(IORING_OP_FSYNC, fd=efd, user_data=1)], 1, 1_000_000_000)
        assert cqes[0].res == -EINVAL


# ---------------------------------------------------------------------------
# observability: /proc/block, /proc/sys/vm, tracepoints
# ---------------------------------------------------------------------------

class TestObservability:
    def test_block_tracepoints_registered_append_only(self):
        assert TRACEPOINTS.index("block_submit") == 15
        assert TRACEPOINTS.index("block_complete") == 16
        assert TRACEPOINTS.index("writeback") == 17

    def test_proc_block_reports_stats(self):
        kern, _fs = _boot()
        p = kern.create_process(["stat"])
        fd = kern.call(p, "openat", AT_FDCWD, "/data/f",
                       O_CREAT | O_WRONLY, 0o644)
        kern.call(p, "write", fd, b"s" * 4096)
        kern.call(p, "fsync", fd)
        pfd = kern.call(p, "openat", AT_FDCWD, "/proc/block", O_RDONLY)
        text = kern.call(p, "read", pfd, 4096).decode()
        assert "disk: 512 blocks x 4096 B" in text
        assert "dirty_ratio: 20" in text and "fsyncs: 1" in text

    def test_vm_knobs_read_write_and_validate(self):
        kern, fs = _boot()
        p = kern.create_process(["knob"])
        fd = kern.call(p, "openat", AT_FDCWD,
                       "/proc/sys/vm/dirty_ratio", O_RDONLY)
        assert kern.call(p, "read", fd, 64) == b"20\n"
        wfd = kern.call(p, "openat", AT_FDCWD,
                        "/proc/sys/vm/dirty_ratio", O_WRONLY)
        kern.call(p, "write", wfd, b"55")
        assert fs.dirty_ratio == 55
        for bad in (b"0", b"101", b"ratio"):
            with pytest.raises(KernelError) as exc:
                kern.call(p, "write", wfd, bad)
            assert exc.value.errno == EINVAL
        wfd2 = kern.call(p, "openat", AT_FDCWD,
                         "/proc/sys/vm/dirty_expire_centisecs", O_WRONLY)
        kern.call(p, "write", wfd2, b"100")
        assert fs.dirty_expire_centisecs == 100

    def test_drop_caches_via_proc(self):
        kern, fs = _boot()
        p = kern.create_process(["dc"])
        fd = kern.call(p, "openat", AT_FDCWD, "/data/f",
                       O_CREAT | O_WRONLY, 0o644)
        kern.call(p, "write", fd, b"c" * 16384)
        kern.call(p, "fsync", fd)
        node = kern.vfs.lookup("/data/f")
        assert node.mapping.resident
        dfd = kern.call(p, "openat", AT_FDCWD,
                        "/proc/sys/vm/drop_caches", O_WRONLY)
        kern.call(p, "write", dfd, b"1")
        assert not node.mapping.resident


# ---------------------------------------------------------------------------
# spec parsing & construction
# ---------------------------------------------------------------------------

class TestSpecParsing:
    def test_defaults_and_off(self):
        assert create_blockfs("off") is None
        assert create_blockfs("none") is None
        fs = create_blockfs(None)
        assert fs.mountpoint == "/data" and fs.disk.nblocks == 2048

    def test_full_spec_string(self):
        fs = create_blockfs(
            "block:blocks=128,bs=512,seek_us=5,read_us=1,write_us=2,"
            "mount=/disk,daemon=0,dirty_ratio=33,dirty_background_ratio=7,"
            "dirty_expire_centisecs=100,dirty_writeback_centisecs=50")
        assert fs.disk.nblocks == 128 and fs.disk.block_size == 512
        assert fs.disk.seek_ns == 5000 and fs.disk.write_ns == 2000
        assert fs.mountpoint == "/disk" and not fs.auto_daemon
        assert fs.dirty_ratio == 33 and fs.dirty_background_ratio == 7
        assert (fs.dirty_expire_centisecs, fs.dirty_writeback_centisecs) \
            == (100, 50)

    def test_passthrough_and_errors(self):
        d = _fast_disk()
        assert create_blockfs(d).disk is d
        fs = BlockFS(_fast_disk(), auto_daemon=False)
        assert create_blockfs(fs) is fs
        for bad in ("floppy", "block:bogus=1", "block:blocks=nan"):
            with pytest.raises(ValueError):
                create_blockfs(bad)

    def test_disk_validates_geometry(self):
        with pytest.raises(ValueError):
            Disk(nblocks=4)
        with pytest.raises(ValueError):
            Disk(block_size=128)
        with pytest.raises(ValueError):
            Disk(image=b"short")
