"""Tests for the virtualization baselines (Fig. 8 machinery) and the
measurement layer (Fig. 2 / Fig. 7 machinery)."""

import pytest

from repro.apps import build, install_all
from repro.apps.lua import arith_benchmark_script, fib_script
from repro.metrics import (
    aggregate_profiles, log_normalize, measure_breakdown, profile_app,
    render_profile,
)
from repro.virt import (
    BASE_MEMORY_MB, ContainerRuntime, EmuCodeView, base_image,
    bash_workload, compare_all, emulate_instance, lua_workload, run_tier,
    sqlite_workload,
)
from repro.wali import WaliRuntime
from repro.wasm import I32, ModuleBuilder, instantiate
from repro.wasm.flatten import flatten_function


class TestEmulator:
    def _module(self):
        mb = ModuleBuilder("t")
        f = mb.func("f", params=[I32], results=[I32], export=True)
        acc = f.add_local(I32)
        with f.block():
            with f.loop():
                f.local_get(0).op("i32.eqz")
                f.br_if(1)
                f.local_get(acc).local_get(0).op("i32.add").local_set(acc)
                f.local_get(0).i32_const(1).op("i32.sub").local_set(0)
                f.br(0)
        f.local_get(acc)
        f.end()
        return mb.build()

    def test_encode_decode_roundtrip(self):
        module = self._module()
        code = flatten_function(module, module.funcs[0], "none")
        view = EmuCodeView(code)
        for pc in range(len(code.ops)):
            assert view[pc] == tuple(code.ops[pc])

    def test_emulated_execution_matches(self):
        module = self._module()
        ref = instantiate(module).invoke("f", 100)
        inst = instantiate(module)
        emulate_instance(inst)
        assert inst.invoke("f", 100) == ref == 5050

    def test_decode_counter_advances(self):
        module = self._module()
        inst = instantiate(module)
        emulate_instance(inst)
        inst.invoke("f", 50)
        view = inst.funcs[0].code
        assert view.decode_count > 100  # every dynamic fetch decoded

    def test_emulation_slower_than_interpretation(self):
        import time

        module = self._module()
        plain = instantiate(module)
        emu = instantiate(module)
        emulate_instance(emu)
        n = 20000
        t0 = time.perf_counter()
        plain.invoke("f", n)
        t_plain = time.perf_counter() - t0
        t0 = time.perf_counter()
        emu.invoke("f", n)
        t_emu = time.perf_counter() - t0
        assert t_emu > t_plain


class TestContainers:
    def test_image_digests_are_stable(self):
        img = base_image()
        digests = [layer.digest() for layer in img.layers]
        assert digests == [layer.digest() for layer in img.layers]

    def test_create_materialises_rootfs(self):
        rt = ContainerRuntime()
        rt.pull(base_image(rootfs_mb=1))
        c = rt.create("repro-base", app_files={"/bin/app.wasm": b"\x00asm"})
        assert c.kernel.vfs.exists("/etc/os-release")
        assert c.kernel.vfs.exists("/bin/app.wasm")
        assert c.rootfs_bytes > 500_000
        assert c.setup_time_s > 0
        assert set(c.namespaces) == {"mnt", "pid", "net", "ipc", "uts",
                                     "user"}

    def test_containers_are_isolated(self):
        rt = ContainerRuntime()
        rt.pull(base_image(rootfs_mb=1))
        c1 = rt.create("repro-base")
        c2 = rt.create("repro-base")
        c1.kernel.vfs.write_file("/tmp/only-c1", b"x")
        assert not c2.kernel.vfs.exists("/tmp/only-c1")


class TestTierHarness:
    def test_all_tiers_agree_on_output(self):
        wl = lua_workload(60)
        module = build(wl.app)
        results = compare_all(module, wl)
        outputs = {r.output for r in results.values()}
        assert len(outputs) == 1  # same computation everywhere
        assert all(r.status == 0 for r in results.values())

    def test_memory_model_ordering(self):
        wl = lua_workload(30)
        module = build(wl.app)
        results = compare_all(module, wl)
        assert results["docker"].peak_mem_mb > results["wali"].peak_mem_mb
        assert results["native"].peak_mem_mb < results["wali"].peak_mem_mb
        for tier, r in results.items():
            assert r.peak_mem_mb >= BASE_MEMORY_MB[tier]

    def test_wali_startup_is_fast(self):
        wl = sqlite_workload(5)
        module = build(wl.app)
        run_tier("native", module, wl)  # warm AoT cache
        wali = run_tier("wali", module, wl)
        docker = run_tier("docker", module, wl)
        assert wali.startup_s < docker.startup_s

    def test_bash_workload_runs_everywhere(self):
        wl = bash_workload(5)
        module = build(wl.app)
        results = compare_all(module, wl)
        assert all(r.status == 0 for r in results.values())


class TestMetrics:
    def test_profile_counts_are_exact_for_known_guest(self):
        from repro.cc import compile_source
        from repro.apps import with_libc

        mod = compile_source(with_libc(r"""
export func _start() {
    var fd: i32 = open("/tmp/x", O_CREAT | O_RDWR, 0x1b4);
    write(fd, "abc", 3);
    write(fd, "def", 3);
    close(fd);
    exit(0);
}
"""), name="known")
        p = profile_app("known", mod)
        assert p.counts["write"] == 2
        assert p.counts["openat"] == 1
        assert p.counts["close"] == 1

    def test_log_normalize_bounds(self):
        from collections import Counter

        norm = log_normalize(Counter({"a": 1000, "b": 10, "c": 1}))
        assert norm["a"] == 1.0
        assert 0 < norm["c"] < norm["b"] < 1.0

    def test_render_profile_contains_rows(self):
        from collections import Counter

        from repro.metrics import SyscallProfile

        p1 = SyscallProfile("app1", Counter({"read": 10, "write": 5}))
        p2 = SyscallProfile("app2", Counter({"read": 2}))
        text = render_profile([p1, p2])
        assert "aggregate" in text and "app1" in text and "app2" in text

    def test_breakdown_sums_to_total(self):
        bd = measure_breakdown(
            "lua", build("mini_lua"), argv=["lua", "/s.lua"],
            files={"/s.lua": arith_benchmark_script(50)})
        assert bd.total_s > 0
        assert abs(bd.app_pct + bd.kernel_pct + bd.wali_pct - 100.0) < 0.5

    def test_blocked_time_excluded(self):
        """A guest that sleeps must not count the sleep as kernel CPU."""
        from repro.cc import compile_source
        from repro.apps import with_libc

        mod = compile_source(with_libc(r"""
export func _start() {
    sleep_ms(80);
    exit(0);
}
"""), name="sleeper")
        bd = measure_breakdown("sleeper", mod)
        assert bd.total_s < 0.05  # the 80 ms sleep is excluded
