"""Kernel edge cases: time, uname, getdents paging, tracing, procfs
lifecycle, and cross-layer stress (signals under load, deep pipelines)."""

import threading
import time

import pytest

from repro.apps import build, install_all, with_libc
from repro.cc import compile_source
from repro.kernel import AT_FDCWD, Kernel, KernelError, O_RDONLY, SIGUSR1
from repro.wali import WaliRuntime


@pytest.fixture
def k():
    return Kernel()


@pytest.fixture
def proc(k):
    return k.create_process(["t"], {})


class TestTimeAndInfo:
    def test_clock_monotonic_increases(self, k, proc):
        a = k.call(proc, "clock_gettime", 1)
        b = k.call(proc, "clock_gettime", 1)
        assert b >= a > 0

    def test_clock_realtime_reasonable(self, k, proc):
        ns = k.call(proc, "clock_gettime", 0)
        assert ns > 1_600_000_000 * 10**9  # after 2020

    def test_bad_clock_einval(self, k, proc):
        with pytest.raises(KernelError):
            k.call(proc, "clock_gettime", 99)

    def test_nanosleep_sleeps(self, k, proc):
        t0 = time.monotonic()
        k.call(proc, "nanosleep", 30_000_000)  # 30 ms
        assert time.monotonic() - t0 >= 0.025

    def test_nanosleep_negative_einval(self, k, proc):
        with pytest.raises(KernelError):
            k.call(proc, "nanosleep", -5)

    def test_sysinfo_counts_processes(self, k, proc):
        si = k.call(proc, "sysinfo")
        assert si.procs >= 2  # init + proc

    def test_times_accumulates_stime(self, k, proc):
        for _ in range(5):
            k.call(proc, "getpid")
        u, s, _, _ = k.call(proc, "times")
        assert s >= 0

    def test_storage_latency_model(self):
        k = Kernel(storage_latency_ns_per_4k=2_000_000)  # 2 ms / 4K
        p = k.create_process(["t"], {})
        k.vfs.write_file("/tmp/f", b"x" * 4096)
        fd = k.call(p, "openat", AT_FDCWD, "/tmp/f", O_RDONLY, 0)
        t0 = time.perf_counter()
        k.call(p, "read", fd, 4096)
        assert time.perf_counter() - t0 >= 0.0015


class TestDirentPaging:
    def test_getdents_buffer_paging_via_wali(self):
        """A small guest buffer forces multiple getdents64 calls that
        together enumerate everything exactly once."""
        rt = WaliRuntime()
        rt.kernel.vfs.mkdirs("/tmp/many")
        for i in range(40):
            rt.kernel.vfs.write_file(f"/tmp/many/file{i:02d}", b"")
        mod = compile_source(with_libc(r"""
buffer dents[256];
global seen: i32 = 0;
export func _start() {
    var fd: i32 = open("/tmp/many", O_RDONLY, 0);
    while (1) {
        var n: i32 = i32(SYS_getdents64(fd, dents, 256));
        if (n <= 0) { break; }
        var off: i32 = 0;
        while (off < n) {
            seen = seen + 1;
            off = off + load16u(dents + off + 16);
        }
    }
    exit(seen);
}
"""), name="pager")
        status = rt.run(mod)
        assert status == 42  # 40 files + "." + ".."


class TestProcfsLifecycle:
    def test_proc_dir_removed_after_reap(self, k, proc):
        child = k.call(proc, "fork")
        path = f"/proc/{child.pid}/stat"
        assert k.vfs.exists(path)
        k.call(child, "exit_group", 0)
        k.call(proc, "wait4", child.pid, 0)
        assert not k.vfs.exists(path)

    def test_proc_maps_shows_vmas(self, k, proc):
        from repro.kernel.mm import (
            AddressSpace, MAP_ANONYMOUS, MAP_PRIVATE, PROT_READ,
        )

        proc.mm = AddressSpace(0x10000, 0x100000)
        proc.mm.mmap(0, 8192, PROT_READ, MAP_PRIVATE | MAP_ANONYMOUS)
        fd = k.call(proc, "openat", AT_FDCWD, "/proc/self/maps", O_RDONLY, 0)
        content = k.call(proc, "read", fd, 4096).decode()
        assert "r--p" in content

    def test_trace_hooks_fire(self, k, proc):
        seen = []
        k.trace_hooks.append(lambda p, name, dt: seen.append(name))
        k.call(proc, "getpid")
        assert seen == ["getpid"]


class TestStress:
    def test_signal_storm_under_compute(self):
        """Many async signals land at loop safepoints without corrupting
        guest state — §3.3's consistency requirement."""
        rt = WaliRuntime()
        mod = compile_source(with_libc(r"""
global hits: i32 = 0;
func on_usr1(sig: i32) { hits = hits + 1; }
export func _start() {
    signal(SIGUSR1, funcref(on_usr1));
    var acc: i32 = 0;
    var i: i32 = 0;
    while (i < 400000) { acc = acc + i; i = i + 1; }
    if (acc != 0xa05c12c0) { exit(99); }  // wrapped sum must be intact
    if (hits == 0) { exit(98); }           // at least one delivery landed
    exit(1);
}
"""), name="storm")
        wp = rt.load(mod)
        stop = threading.Event()

        def bombard():
            while not stop.is_set():
                try:
                    rt.kernel.call(rt.kernel.process(1), "kill",
                                   wp.proc.pid, SIGUSR1)
                except KernelError:
                    return
                time.sleep(0.002)

        t = threading.Thread(target=bombard, daemon=True)
        t.start()
        status = wp.run()
        stop.set()
        t.join(1)
        assert status == 1  # handlers ran, accumulator uncorrupted

    def test_deep_pipeline_chain(self):
        rt = WaliRuntime()
        install_all(rt, ["cat", "wc", "echo"])
        rt.kernel.vfs.write_file("/tmp/d", b"abc\n" * 10)
        rt.kernel.vfs.write_file(
            "/tmp/s.sh",
            b"cat /tmp/d | cat\ncat /tmp/d | wc\nexit 0\n")
        assert rt.run(build("mini_sh"), argv=["sh", "/tmp/s.sh"]) == 0
        out = rt.kernel.console_output()
        assert out.count(b"abc") == 10
        assert b"10 40" in out

    def test_many_sequential_forks(self):
        rt = WaliRuntime()
        mod = compile_source(with_libc(r"""
export func _start() {
    var i: i32 = 0;
    var sum: i32 = 0;
    while (i < 6) {
        var pid: i32 = fork();
        if (pid == 0) { exit(i); }
        waitpid(pid, __io_buf);
        sum = sum + ((load32(__io_buf) >> 8) & 255);
        i = i + 1;
    }
    exit(sum);
}
"""), name="forker")
        assert rt.run(mod) == 0 + 1 + 2 + 3 + 4 + 5

    def test_concurrent_guests_share_kernel(self):
        rt = WaliRuntime()
        from repro.apps.lua import fib_script

        rt.kernel.vfs.write_file("/tmp/a.lua", fib_script(15))
        rt.kernel.vfs.write_file("/tmp/b.lua", fib_script(16))
        wa = rt.load(build("mini_lua"), argv=["lua", "/tmp/a.lua"])
        wb = rt.load(build("mini_lua"), argv=["lua", "/tmp/b.lua"])
        wa.start_in_thread()
        wb.start_in_thread()
        wa.join(20)
        wb.join(20)
        assert wa.exit_status == 0 and wb.exit_status == 0
        out = rt.kernel.console_output()
        assert b"610" in out and b"987" in out
