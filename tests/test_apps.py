"""Integration tests: the guest application suite end-to-end on WALI."""

import time

import pytest

from repro.apps import app_names, build, install_all
from repro.apps.lua import arith_benchmark_script, fib_script
from repro.apps.sqlite import workload_script
from repro.wali import WaliRuntime


@pytest.fixture
def rt():
    return WaliRuntime()


def run(rt, app, argv, files=None, stdin=b""):
    for path, data in (files or {}).items():
        rt.kernel.vfs.mkdirs(path.rsplit("/", 1)[0] or "/")
        rt.kernel.vfs.write_file(path, data)
    if stdin:
        rt.kernel.console_feed(stdin)
    return rt.run(build(app), argv=argv)


class TestCoreutils:
    def test_all_apps_compile_and_validate(self):
        for name in app_names():
            module = build(name)
            assert module.find_export("_start", "func") is not None

    def test_echo(self, rt):
        assert run(rt, "echo", ["echo", "a", "b"]) == 0
        assert rt.kernel.console_output() == b"a b\n"

    def test_cat_files(self, rt):
        status = run(rt, "cat", ["cat", "/tmp/1", "/tmp/2"],
                     files={"/tmp/1": b"one", "/tmp/2": b"two"})
        assert status == 0
        assert rt.kernel.console_output() == b"onetwo"

    def test_cat_missing_file(self, rt):
        assert run(rt, "cat", ["cat", "/nope"]) == 1

    def test_cat_stdin(self, rt):
        assert run(rt, "cat", ["cat"], stdin=b"piped") == 0
        assert b"piped" in rt.kernel.console_output()

    def test_wc(self, rt):
        status = run(rt, "wc", ["wc", "/tmp/f"],
                     files={"/tmp/f": b"a\nbb\nccc\n"})
        assert status == 0
        assert rt.kernel.console_output() == b"3 9\n"

    def test_true_false(self, rt):
        assert run(rt, "true", ["true"]) == 0
        assert run(WaliRuntime(), "false", ["false"]) == 1

    def test_rle_compresses(self, rt):
        assert run(rt, "rle", ["rle"], stdin=b"aaaabbc") == 0
        assert rt.kernel.console_output() == b"\x04a\x02b\x01c"


class TestMiniLua:
    def test_fib(self, rt):
        status = run(rt, "mini_lua", ["lua", "/s.lua"],
                     files={"/s.lua": fib_script(20)})
        assert status == 0
        assert rt.kernel.console_output() == b"6765\n"

    def test_arith_benchmark_deterministic(self):
        outs = []
        for _ in range(2):
            rt = WaliRuntime()
            run(rt, "mini_lua", ["lua", "/s.lua"],
                files={"/s.lua": arith_benchmark_script(100)})
            outs.append(rt.kernel.console_output())
        assert outs[0] == outs[1]

    def test_nested_loops(self, rt):
        script = (b"set t 0\n"
                  b"loop 3\n"
                  b"  loop 4\n"
                  b"    addi t 1\n"
                  b"  end\n"
                  b"end\n"
                  b"print t\n")
        assert run(rt, "mini_lua", ["lua", "/s.lua"],
                   files={"/s.lua": script}) == 0
        assert rt.kernel.console_output() == b"12\n"

    def test_bad_instruction_errors(self, rt):
        assert run(rt, "mini_lua", ["lua", "/s.lua"],
                   files={"/s.lua": b"explode now\n"}) == 1

    def test_div_mod(self, rt):
        script = (b"set a 17\nset b 5\n"
                  b"div c a b\nprint c\n"
                  b"mod d a b\nprint d\n")
        run(rt, "mini_lua", ["lua", "/s.lua"], files={"/s.lua": script})
        assert rt.kernel.console_output() == b"3\n2\n"


class TestMiniSqlite:
    def test_insert_get_delete(self, rt):
        script = (b"insert alpha one\n"
                  b"insert beta two\n"
                  b"get alpha\n"
                  b"delete alpha\n"
                  b"get alpha\n"
                  b"get beta\n"
                  b"count\n"
                  b"exit\n")
        status = run(rt, "mini_sqlite", ["db", "/tmp/t.db", "/tmp/s"],
                     files={"/tmp/s": script})
        assert status == 0
        out = rt.kernel.console_output().splitlines()
        assert out == [b"OK", b"OK", b"one", b"DELETED", b"(nil)", b"two",
                       b"1"]

    def test_updates_shadow_old_records(self, rt):
        script = (b"insert k v1\ninsert k v2\nget k\nexit\n")
        run(rt, "mini_sqlite", ["db", "/tmp/t.db", "/tmp/s"],
            files={"/tmp/s": script})
        assert b"v2" in rt.kernel.console_output()

    def test_persistence_across_runs(self, rt):
        run(rt, "mini_sqlite", ["db", "/tmp/t.db", "/tmp/s1"],
            files={"/tmp/s1": b"insert persist yes\nexit\n"})
        rt.kernel.clear_console()
        wp = rt.load(build("mini_sqlite"), argv=["db", "/tmp/t.db", "/tmp/s2"])
        rt.kernel.vfs.write_file("/tmp/s2", b"get persist\nexit\n")
        wp.run()
        assert b"yes" in rt.kernel.console_output()

    def test_vacuum_shrinks_file(self, rt):
        script = workload_script(10, 0)[:-5] + \
            b"delete key00001\ndelete key00002\nvacuum\ncount\nexit\n"
        run(rt, "mini_sqlite", ["db", "/tmp/t.db", "/tmp/s"],
            files={"/tmp/s": script})
        assert rt.kernel.vfs.lookup("/tmp/t.db").size == 8 * 64

    def test_index_grows_with_mremap(self, rt):
        # >512 records forces the mremap growth path
        script = workload_script(600, 5)
        status = run(rt, "mini_sqlite", ["db", "/tmp/big.db", "/tmp/s"],
                     files={"/tmp/s": script})
        assert status == 0
        assert rt.kernel.syscall_counts["mremap"] >= 1


class TestShell:
    def test_builtin_loop_free_script(self, rt):
        install_all(rt, ["echo", "cat", "wc", "true", "false"])
        script = (b"echo one\n"
                  b"echo two three\n"
                  b"pwd\n"
                  b"exit 0\n")
        rt.kernel.vfs.write_file("/tmp/s.sh", script)
        assert rt.run(build("mini_sh"), argv=["sh", "/tmp/s.sh"]) == 0
        assert rt.kernel.console_output() == b"one\ntwo three\n/\n"

    def test_exit_status_propagates(self, rt):
        install_all(rt, ["false"])
        rt.kernel.vfs.write_file("/tmp/s.sh",
                                 b"/bin/false.wasm\nstatus\nexit 0\n")
        rt.run(build("mini_sh"), argv=["sh", "/tmp/s.sh"])
        assert rt.kernel.console_output() == b"1\n"

    def test_command_not_found_127(self, rt):
        rt.kernel.vfs.write_file("/tmp/s.sh", b"nosuchcmd\nstatus\nexit 0\n")
        rt.run(build("mini_sh"), argv=["sh", "/tmp/s.sh"])
        assert b"127" in rt.kernel.console_output()

    def test_input_redirection(self, rt):
        install_all(rt, ["wc"])
        rt.kernel.vfs.write_file("/tmp/data", b"x\ny\n")
        rt.kernel.vfs.write_file("/tmp/s.sh", b"wc < /tmp/data\nexit 0\n")
        rt.run(build("mini_sh"), argv=["sh", "/tmp/s.sh"])
        assert b"2 4" in rt.kernel.console_output()

    def test_append_redirection(self, rt):
        install_all(rt, ["echo"])
        rt.kernel.vfs.write_file(
            "/tmp/s.sh",
            b"echo first > /tmp/log\necho second >> /tmp/log\nexit 0\n")
        rt.run(build("mini_sh"), argv=["sh", "/tmp/s.sh"])
        assert rt.kernel.vfs.read_file("/tmp/log") == b"first\nsecond\n"

    def test_three_process_pipeline(self, rt):
        install_all(rt, ["cat", "wc", "echo"])
        rt.kernel.vfs.write_file("/tmp/data", b"hello pipeline\n")
        rt.kernel.vfs.write_file("/tmp/s.sh",
                                 b"cat /tmp/data | wc\nexit 0\n")
        rt.run(build("mini_sh"), argv=["sh", "/tmp/s.sh"])
        assert b"1 15" in rt.kernel.console_output()

    def test_comments_skipped(self, rt):
        rt.kernel.vfs.write_file("/tmp/s.sh", b"# comment\necho ok\nexit 0\n")
        rt.run(build("mini_sh"), argv=["sh", "/tmp/s.sh"])
        assert rt.kernel.console_output() == b"ok\n"


class TestNetworkApps:
    def _start_server(self, rt, app, argv):
        server = rt.load(build(app), argv=argv)
        server.start_in_thread()
        for _ in range(500):
            if b"ready" in rt.kernel.console_output():
                return server
            time.sleep(0.01)
        raise TimeoutError("server never became ready")

    def test_memcached_session(self, rt):
        server = self._start_server(rt, "mini_memcached",
                                    ["memcached", "11311"])
        status = rt.run(build("memcached_client"),
                        argv=["client", "11311", "25", "1"])
        server.join(5)
        assert status == 0
        assert b"client ok checksum=" in rt.kernel.console_output()
        assert server.exit_status == 0

    def test_memcached_refuses_root(self, rt):
        proc_wp = rt.load(build("mini_memcached"), argv=["memcached"])
        proc_wp.proc.uid = proc_wp.proc.euid = 0
        assert proc_wp.run() == 71

    def test_mqtt_roundtrip_checksums(self, rt):
        server = self._start_server(rt, "mqtt_broker", ["broker", "11883"])
        status = rt.run(build("paho_bench"),
                        argv=["bench", "11883", "20", "48", "1"])
        server.join(5)
        assert status == 0
        assert b"bench ok=20 bad=0" in rt.kernel.console_output()

    def test_memcached_uses_clone_threads(self, rt):
        server = self._start_server(rt, "mini_memcached",
                                    ["memcached", "11312"])
        rt.run(build("memcached_client"), argv=["client", "11312", "5", "1"])
        server.join(5)
        assert rt.kernel.syscall_counts["clone"] >= 1


class TestSyscallFootprints:
    """Each app's trace hits the syscall families Table 1 credits it with."""

    def test_shell_uses_process_and_signal_calls(self, rt):
        install_all(rt, ["echo"])
        rt.kernel.vfs.write_file("/tmp/s.sh",
                                 b"echo x > /tmp/y\nexit 0\n")
        rt.run(build("mini_sh"), argv=["sh", "/tmp/s.sh"])
        counts = rt.kernel.syscall_counts
        for name in ("rt_sigaction", "fork", "execve", "wait4"):
            assert counts[name] >= 1, name

    def test_sqlite_uses_pread_pwrite_mremap_family(self, rt):
        run(rt, "mini_sqlite", ["db", "/t.db", "/s"],
            files={"/s": workload_script(600, 3)})
        counts = rt.kernel.syscall_counts
        for name in ("pread64", "pwrite64", "mmap", "mremap"):
            assert counts[name] >= 1, name

    def test_lua_is_compute_light_on_syscalls(self, rt):
        run(rt, "mini_lua", ["lua", "/s.lua"],
            files={"/s.lua": arith_benchmark_script(300)})
        assert sum(rt.kernel.syscall_counts.values()) < 30
